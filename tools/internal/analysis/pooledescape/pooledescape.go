// Package pooledescape defines an analyzer that checks the lifecycle of
// pooled buffers: scene capture buffers (Scene.CaptureImage →
// ReleaseCapture), codec scratch arenas (getScratch → release,
// getPlaneBuf → putPlaneBuf), and any sync.Pool Get/Put pair.
//
// Pooled memory is recycled: content becomes garbage the moment it is
// released, and a buffer that is never released silently degrades the
// pool back to per-call allocation (the codec hot path's 1-alloc/op
// contract). The analyzer enforces two rules per function:
//
//   - use-after-release: once a statement releases a value (ReleaseX(v),
//     pool.Put(v), v.release()), no later statement in the same block may
//     mention it;
//   - release-on-every-path: a value acquired from a pool must, on every
//     control-flow path to a return, either be released (including by a
//     registered defer or cleanup closure) or be handed off whole —
//     returned, stored, sent on a channel, or passed as a complete
//     argument to another function, which transfers the release
//     obligation to the receiver. Accessing only a field (cap.Image) is
//     not a hand-off, so a function that uses cap.Image and forgets
//     ReleaseCapture(cap) on an error path is flagged.
//
// Deliberate exceptions carry a //lint:pooled <reason> comment on the
// flagged line or the line above.
package pooledescape

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"

	"earthplus/tools/internal/analysis/lintcomment"
)

// DefaultAcquirers are the repo's pooled-buffer constructors. sync.Pool
// Get calls are recognised by type and need no listing.
const DefaultAcquirers = "CaptureImage,getScratch,getTileScratch,getPlaneBuf,getImage,getF32,getMask"

var acquirers string

var Analyzer = &analysis.Analyzer{
	Name: "pooledescape",
	Doc:  "check pooled buffers (scene captures, codec scratch, sync.Pool values) for use-after-release and missing release on some path",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&acquirers, "acquire", DefaultAcquirers,
		"comma-separated function/method names whose results are pool-owned")
}

func run(pass *analysis.Pass) (interface{}, error) {
	names := map[string]bool{}
	for _, n := range strings.Split(acquirers, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body, names)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body, names)
			}
			return true
		})
	}
	return nil, nil
}

// acquire is one tracked pooled value: the object bound and the statement
// that bound it.
type acquire struct {
	obj  types.Object
	stmt ast.Stmt
	call *ast.CallExpr
}

// checkFunc runs both rules over one function body. Nested function
// literals are analyzed as their own units by the caller; their bodies are
// skipped when collecting this unit's acquires but ARE searched when
// deciding whether a statement releases or consumes a value (a cleanup
// closure that Puts a buffer discharges the obligation at its definition).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, names map[string]bool) {
	parents := buildParents(body)
	acquires := collectAcquires(pass, body, names)
	acquired := map[types.Object]bool{}
	for _, a := range acquires {
		acquired[a.obj] = true
	}
	if len(acquires) > 0 {
		g := cfg.New(body, mayReturn)
		for _, a := range acquires {
			checkReleasedOnAllPaths(pass, g, a, parents)
		}
	}
	checkUseAfterRelease(pass, body, acquired)
}

// collectAcquires finds `v := acquireCall()` bindings at any statement of
// the unit outside nested function literals.
func collectAcquires(pass *analysis.Pass, body *ast.BlockStmt, names map[string]bool) []acquire {
	var out []acquire
	walkSkipFuncLit(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i, rhs := range as.Rhs {
			call := acquireCall(pass, rhs, names)
			if call == nil {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out = append(out, acquire{obj: obj, stmt: as, call: call})
			}
		}
	})
	return out
}

// acquireCall unwraps parens and type assertions and reports the acquire
// call underneath, if any: a call to a configured name, or sync.Pool.Get.
func acquireCall(pass *analysis.Pass, e ast.Expr, names map[string]bool) *ast.CallExpr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return nil
			}
			if name := calleeName(call); names[name] {
				return call
			}
			if isPoolMethod(pass, call, "Get") {
				return call
			}
			return nil
		}
	}
}

// calleeName returns the rightmost identifier of the call target.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isPoolMethod reports whether call invokes the named method on a
// sync.Pool (or *sync.Pool) receiver.
func isPoolMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// fate classifies what one statement does to a tracked object.
type fate int

const (
	neutral  fate = iota
	released      // a release call names the object (anywhere, incl. closures/defers)
	escaped       // the object is consumed whole: returned, stored, sent, passed as an argument
	killed        // the object is reassigned
)

// classify resolves the strongest fate of obj within node n.
func classify(pass *analysis.Pass, n ast.Node, obj types.Object, parents map[ast.Node]ast.Node) fate {
	f := neutral
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if ok && isReleaseOf(pass, call, obj) {
			f = released
			return false
		}
		return true
	})
	if f == released {
		return f
	}
	ast.Inspect(n, func(c ast.Node) bool {
		id, ok := c.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != obj {
			return true
		}
		switch use(id, parents) {
		case escaped:
			f = escaped
		case killed:
			if f != escaped {
				f = killed
			}
		}
		return true
	})
	return f
}

// isReleaseOf reports whether call releases obj: ReleaseX(.., obj, ..),
// pool.Put(obj), or obj.release()/obj.Release().
func isReleaseOf(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	name := calleeName(call)
	releaseName := name == "release" || strings.HasPrefix(name, "Release") ||
		(name == "Put" && isPoolMethod(pass, call, "Put"))
	if releaseName {
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				return true
			}
		}
	}
	// Receiver style releases the receiver only when the method takes no
	// arguments: s.release() frees s, but s.ReleaseImage(im) frees im.
	if len(call.Args) == 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if name == "release" || strings.HasPrefix(name, "Release") {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					return true
				}
			}
		}
	}
	return false
}

// use decides how a single identifier occurrence treats the value: plain
// read (neutral), whole-value consumption (escaped), or overwrite
// (killed). Unknown contexts count as consumption so the leak rule errs
// toward silence.
func use(id *ast.Ident, parents map[ast.Node]ast.Node) fate {
	var child ast.Node = id
	p := parents[id]
	for {
		if pp, ok := p.(*ast.ParenExpr); ok {
			child = p
			p = parents[pp]
			continue
		}
		break
	}
	switch pp := p.(type) {
	case *ast.SelectorExpr:
		if pp.X == child {
			return neutral // v.Field — a read, not a hand-off
		}
	case *ast.IndexExpr:
		if pp.X == child {
			return neutral // v[i]
		}
	case *ast.SliceExpr:
		if pp.X == child {
			return neutral // v[lo:hi]
		}
	case *ast.StarExpr:
		return neutral // *v
	case *ast.BinaryExpr:
		return neutral // comparisons and arithmetic read the value
	case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.CaseClause, *ast.IncDecStmt:
		return neutral
	case *ast.RangeStmt:
		if pp.X == child {
			return neutral // ranging reads the buffer
		}
		return killed // the loop rebinds v as key/value
	case *ast.AssignStmt:
		for _, l := range pp.Lhs {
			if l == child {
				return killed
			}
		}
		return escaped // RHS whole value: alias or store
	case *ast.CallExpr:
		if pp.Fun == child {
			return neutral // calling v itself
		}
		return escaped // whole-value argument: obligation transfers
	}
	return escaped
}

// checkReleasedOnAllPaths walks the CFG from the acquire statement and
// reports when some path reaches an exit with the value still live.
func checkReleasedOnAllPaths(pass *analysis.Pass, g *cfg.CFG, a acquire, parents map[ast.Node]ast.Node) {
	startB, startI := -1, -1
	for bi, b := range g.Blocks {
		for ni, n := range b.Nodes {
			if n == a.stmt {
				startB, startI = bi, ni
			}
		}
	}
	if startB < 0 {
		return // statement position not modeled (e.g. select comms); skip
	}
	type frame struct {
		b *cfg.Block
		i int
	}
	stack := []frame{{g.Blocks[startB], startI + 1}}
	seen := map[*cfg.Block]bool{}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		discharged := false
		for i := fr.i; i < len(fr.b.Nodes); i++ {
			if classify(pass, fr.b.Nodes[i], a.obj, parents) != neutral {
				discharged = true
				break
			}
		}
		if discharged {
			continue
		}
		// A leak needs a *returning* exit: blocks cut short by panic or
		// an os.Exit-style call carry no release obligation.
		if len(fr.b.Succs) == 0 && fr.b.Live && fr.b.Return() != nil {
			if !lintcomment.Suppressed(pass.Fset, pass.Files, a.stmt.Pos(), "pooled") {
				pass.Report(analysis.Diagnostic{
					Pos: a.stmt.Pos(),
					Message: fmt.Sprintf(
						"pooled value %s from %s is not released on every path: call its Release/Put (or hand it off whole), or annotate with //lint:pooled <reason>",
						a.obj.Name(), calleeName(a.call)),
				})
			}
			return // one report per acquire
		}
		for _, s := range fr.b.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, frame{s, 0})
			}
		}
	}
}

// checkUseAfterRelease scans every block of the unit linearly: after a
// direct (non-deferred, non-closure, non-nested) release of a local
// variable, a later statement in the same block must not mention it.
// Argument-style releases (ReleaseCapture(c), pool.Put(b)) are tracked
// for any local; receiver-style ones (s.release()) only for variables
// acquired from a pool in this unit, so unrelated release/Release methods
// — semaphores, locks — never start tracking.
func checkUseAfterRelease(pass *analysis.Pass, body *ast.BlockStmt, acquired map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		blk, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		releasedAt := map[types.Object]token.Pos{}
		for _, st := range blk.List {
			if _, isDefer := st.(*ast.DeferStmt); isDefer {
				continue
			}
			// Uses first: a statement that both mentions and re-releases is
			// reported once as a use.
			for obj := range releasedAt {
				if mentionsOutsideFuncLit(pass, st, obj) {
					if reassigns(pass, st, obj) {
						delete(releasedAt, obj)
						continue
					}
					if !lintcomment.Suppressed(pass.Fset, pass.Files, st.Pos(), "pooled") {
						pass.Report(analysis.Diagnostic{
							Pos: st.Pos(),
							Message: fmt.Sprintf(
								"use of %s after its release: pooled buffers are recycled (and may be concurrently reused) once released",
								obj.Name()),
						})
					}
					delete(releasedAt, obj)
				}
			}
			walkShallow(st, func(c ast.Node) {
				call, ok := c.(*ast.CallExpr)
				if !ok {
					return
				}
				for _, arg := range call.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isLocalVar(obj) && isReleaseOf(pass, call, obj) {
							releasedAt[obj] = call.Pos()
						}
					}
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil && acquired[obj] && isReleaseOf(pass, call, obj) {
							releasedAt[obj] = call.Pos()
						}
					}
				}
			})
		}
		return true
	})
}

// isLocalVar reports whether obj is a function-local variable (including
// parameters) — package-level state is out of scope for block-local
// use-after-release tracking.
func isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && !v.IsField() && v.Parent() != nil && v.Parent() != v.Pkg().Scope()
}

// mentionsOutsideFuncLit reports whether st references obj lexically,
// ignoring nested closures (which run later, under their own discipline).
func mentionsOutsideFuncLit(pass *analysis.Pass, st ast.Stmt, obj types.Object) bool {
	found := false
	walkSkipFuncLit(st, func(n ast.Node) {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			found = true
		}
	})
	return found
}

// reassigns reports whether st binds obj a fresh value.
func reassigns(pass *analysis.Pass, st ast.Stmt, obj types.Object) bool {
	as, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, l := range as.Lhs {
		if id, ok := l.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// walkSkipFuncLit visits every node under n except nested *ast.FuncLit
// subtrees.
func walkSkipFuncLit(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}

// walkShallow additionally skips nested *ast.BlockStmt subtrees: a
// release inside an if/for body is conditional from the enclosing
// block's point of view and is handled when that inner block is scanned.
func walkShallow(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			fn(c)
			return true
		}
		switch c.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		}
		if c != nil {
			fn(c)
		}
		return true
	})
}

// buildParents records each node's parent for context-sensitive use
// classification.
func buildParents(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// mayReturn treats aborting calls (panic, os.Exit, log.Fatal*, testing
// Fatal*) as non-returning so their paths need no release.
func mayReturn(call *ast.CallExpr) bool {
	switch name := calleeName(call); name {
	case "panic", "Exit", "Fatal", "Fatalf", "Fatalln", "Goexit":
		return false
	}
	return true
}
