package eperrboundary_test

import (
	"testing"

	"earthplus/tools/internal/analysis/analysistest"
	"earthplus/tools/internal/analysis/eperrboundary"
)

func TestScoped(t *testing.T) {
	analysistest.Run(t, eperrboundary.Analyzer, "testdata/src", "pkg/earthplus/fixture")
}

func TestOutOfScope(t *testing.T) {
	analysistest.Run(t, eperrboundary.Analyzer, "testdata/src", "internal/other")
}
