// Package eperrboundary defines an analyzer that keeps the public API
// error contract typed.
//
// Every error that crosses the pkg/earthplus or pkg/earthplus/serve
// boundary must carry the eperr taxonomy (code + op), because callers —
// including the HTTP error mapper, which turns eperr codes into statuses
// and machine-readable JSON bodies — dispatch on eperr.CodeOf. A naked
// fmt.Errorf or errors.New returned from an exported function is
// invisible to that dispatch and surfaces as a 500/unknown.
//
// The analyzer flags, inside exported functions and exported methods of
// the scoped packages, any return statement whose result is a direct
// errors.New(...) or fmt.Errorf(...) call — unless the format string uses
// %w, which preserves a typed cause for errors.As/eperr.CodeOf. It also
// follows one local hop: `err := fmt.Errorf(...)` later returned as
// `return err` within the same function.
//
// Deliberate exceptions carry //lint:eperr <reason>.
package eperrboundary

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"

	"earthplus/tools/internal/analysis/lintcomment"
)

// DefaultPackages are the public API surface: the embedding facade and
// the serving tier.
const DefaultPackages = "pkg/earthplus"

var packages string

var Analyzer = &analysis.Analyzer{
	Name: "eperrboundary",
	Doc:  "require errors returned across the public API boundary to carry the eperr taxonomy (no naked fmt.Errorf/errors.New)",
	Run:  run,
}

func init() {
	Analyzer.Flags.StringVar(&packages, "packages", DefaultPackages,
		"comma-separated package path substrings the analyzer applies to")
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintcomment.PackageMatch(packages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsError(pass, fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// returnsError reports whether fd's signature includes an error result.
func returnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	res := obj.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			return true
		}
	}
	return false
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Pass 1: local variables bound (only ever) to naked constructors.
	naked := map[types.Object]*ast.CallExpr{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.ObjectOf(id)
			if obj == nil {
				continue
			}
			if call := nakedConstructor(pass, rhs); call != nil {
				naked[obj] = call
			} else {
				delete(naked, obj) // rebound to something we can't prove naked
			}
		}
		return true
	})
	// Pass 2: returns. Nested function literals keep fd's exported-ness:
	// a closure returned from an exported function still feeds callers.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call := nakedConstructor(pass, res)
			if call == nil {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					call = naked[pass.TypesInfo.ObjectOf(id)]
				}
			}
			if call == nil {
				continue
			}
			if lintcomment.Suppressed(pass.Fset, pass.Files, ret.Pos(), "eperr") ||
				lintcomment.Suppressed(pass.Fset, pass.Files, call.Pos(), "eperr") {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: ret.Pos(),
				Message: fmt.Sprintf(
					"%s returns a naked %s across the public API boundary: use eperr.New/eperr.Wrap so callers (and the HTTP error mapper) can dispatch on the code, or annotate with //lint:eperr <reason>",
					fd.Name.Name, calleeLabel(call)),
			})
		}
		return true
	})
}

// nakedConstructor reports the untyped-error constructor call underneath
// e, if any: errors.New(...), or fmt.Errorf(...) whose format string has
// no %w verb (a %w chain preserves a typed cause for errors.As).
func nakedConstructor(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return call
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return nil
		}
		if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok {
			if s, err := strconv.Unquote(lit.Value); err == nil && strings.Contains(s, "%w") {
				return nil
			}
		}
		return call
	}
	return nil
}

func calleeLabel(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return x.Name + "." + sel.Sel.Name
		}
	}
	return "error constructor"
}
