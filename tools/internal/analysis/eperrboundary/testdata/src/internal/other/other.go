// Package other is outside the public API scope: internal packages may
// build plain errors (exported surfaces wrap them at the boundary).
package other

import "fmt"

func Plain() error {
	return fmt.Errorf("internal plumbing")
}
