// Package errors is a fixture stub for the error constructors.
package errors

func New(text string) error { return nil }
