// Package fmt is a fixture stub for the error constructors.
package fmt

func Errorf(format string, a ...interface{}) error { return nil }
