// Package fixture exercises eperrboundary inside the public API scope.
package fixture

import (
	"errors"
	"fmt"
)

// Naked returns an untyped error the HTTP mapper cannot dispatch on.
func Naked() error {
	return fmt.Errorf("bad thing: %v", 3) // want "Naked returns a naked fmt.Errorf"
}

// NakedNew does the same via errors.New.
func NakedNew() error {
	return errors.New("boom") // want "NakedNew returns a naked errors.New"
}

// Wrapped keeps a typed cause reachable through errors.As.
func Wrapped(err error) error {
	return fmt.Errorf("context: %w", err)
}

// viaHelper is unexported: its errors never cross the API boundary
// directly, so the exported caller is the enforcement point.
func viaHelper() error {
	return errors.New("internal detail")
}

// Indirect launders the constructor through a local before returning it.
func Indirect() error {
	err := fmt.Errorf("deferred naked")
	return err // want "Indirect returns a naked fmt.Errorf"
}

// SuppressedNaked documents a deliberate untyped error.
func SuppressedNaked() error {
	//lint:eperr fixture documents a deliberate untyped error
	return errors.New("documented exception")
}
