// Command earthplus-lint runs the repo's custom go/analysis suite:
//
//	maporder       range-over-map in determinism-sensitive packages
//	detsource      wall-clock/entropy sources in deterministic packages
//	pooledescape   pooled-buffer lifecycle (use-after-release, leaks)
//	eperrboundary  untyped errors crossing the public API boundary
//
// It speaks the `go vet -vettool` unitchecker protocol, so the toolchain
// does all package loading and the main module stays stdlib-only. Invoked
// directly with package patterns it re-execs itself through go vet:
//
//	go build -o earthplus-lint ./cmd/earthplus-lint   (from tools/)
//	./earthplus-lint ./...                            (from the repo root)
//
// is equivalent to `go vet -vettool=$PWD/earthplus-lint ./...`. Exit
// status 0 means the tree is clean; findings print in the usual
// file:line: message form and exit nonzero.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"earthplus/tools/internal/analysis/detsource"
	"earthplus/tools/internal/analysis/eperrboundary"
	"earthplus/tools/internal/analysis/maporder"
	"earthplus/tools/internal/analysis/pooledescape"
)

func main() {
	args := os.Args[1:]
	if protocolInvocation(args) {
		unitchecker.Main( // never returns
			maporder.Analyzer,
			detsource.Analyzer,
			pooledescape.Analyzer,
			eperrboundary.Analyzer,
		)
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "earthplus-lint:", err)
		os.Exit(1)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "earthplus-lint:", err)
		os.Exit(1)
	}
}

// protocolInvocation reports whether the arguments are the vet tool
// protocol (version probe, flag enumeration, or a per-package .cfg file)
// rather than a human typing package patterns.
func protocolInvocation(args []string) bool {
	if len(args) == 0 {
		return false
	}
	if strings.HasPrefix(args[0], "-V") || args[0] == "-flags" {
		return true
	}
	return strings.HasSuffix(args[len(args)-1], ".cfg")
}
