// Module earthplus/tools houses the repo's custom static-analysis suite
// (earthplus-lint and its analyzers). It is a separate, nested module so
// the main earthplus module stays stdlib-only: `go build ./...` at the
// repo root never pulls golang.org/x/tools.
//
// golang.org/x/tools is vendored (see vendor/) from the subset the Go
// toolchain itself ships under src/cmd/vendor, so building this module
// needs no network access.
module earthplus/tools

go 1.24

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
