// Command earthplus-encode exposes the public codec API as a standalone
// tool for 16-bit PGM images: encode to a per-band codestream, decode
// back (optionally truncated to fewer quality layers), and report
// rate/distortion.
//
// Usage:
//
//	earthplus-encode -in image.pgm -out image.epc -bpp 1.0
//	earthplus-encode -decode -in image.epc -out restored.pgm -layers 4
//	earthplus-encode -roundtrip -in image.pgm -bpp 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/cli"
	"earthplus/pkg/earthplus"
)

const cmdName = "earthplus-encode"

func main() {
	var perf cli.Perf
	perf.RegisterCodec(flag.CommandLine)
	in := flag.String("in", "", "input file (PGM for encode, codestream for decode)")
	out := flag.String("out", "", "output file (empty with -roundtrip)")
	bpp := flag.Float64("bpp", 0, "bits per pixel budget (0 = near-lossless)")
	layers := flag.Int("layers", 0, "decode only this many quality layers (0 = all)")
	decode := flag.Bool("decode", false, "decode a codestream back to PGM")
	roundtrip := flag.Bool("roundtrip", false, "encode+decode in memory and report PSNR")
	flag.Parse()
	perf.Apply()

	if *in == "" {
		cli.Fail(cmdName, "missing -in")
	}
	switch {
	case *roundtrip:
		img := readPGM(*in)
		data := encodePlane(img, *bpp)
		plane, w, h, err := earthplus.DecodePlane(data, *layers)
		if err != nil {
			cli.Fail(cmdName, "decode: %v", err)
		}
		rec := earthplus.NewImage(w, h, img.Bands)
		copy(rec.Plane(0), plane)
		rec.Clamp()
		info, _ := earthplus.ParseCodestream(data)
		fmt.Printf("input    %dx%d (%d pixels)\n", w, h, w*h)
		fmt.Printf("encoded  %d bytes (%.3f bpp), %d layers\n",
			len(data), float64(len(data))*8/float64(w*h), info.NLayers)
		fmt.Printf("PSNR     %.2f dB\n", earthplus.PSNRBand(img, rec, 0))
	case *decode:
		data, err := os.ReadFile(*in)
		if err != nil {
			cli.Fail(cmdName, "reading %s: %v", *in, err)
		}
		plane, w, h, err := earthplus.DecodePlane(data, *layers)
		if err != nil {
			cli.Fail(cmdName, "decode: %v", err)
		}
		img := earthplus.NewImage(w, h, []earthplus.BandInfo{{Name: "gray"}})
		copy(img.Plane(0), plane)
		img.Clamp()
		writePGM(*out, img)
		fmt.Printf("decoded %dx%d -> %s\n", w, h, *out)
	default:
		img := readPGM(*in)
		data := encodePlane(img, *bpp)
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			cli.Fail(cmdName, "writing %s: %v", *out, err)
		}
		fmt.Printf("encoded %dx%d -> %d bytes (%.3f bpp) -> %s\n",
			img.Width, img.Height, len(data),
			float64(len(data))*8/float64(img.Width*img.Height), *out)
	}
}

func encodePlane(img *earthplus.Image, bpp float64) []byte {
	opts := earthplus.DefaultCodecOptions()
	if bpp > 0 {
		opts.BudgetBytes = earthplus.BudgetForBPP(bpp, img.Width, img.Height)
	}
	data, err := earthplus.EncodePlane(img.Plane(0), img.Width, img.Height, opts)
	if err != nil {
		cli.Fail(cmdName, "encode: %v", err)
	}
	return data
}

func readPGM(path string) *earthplus.Image {
	f, err := os.Open(path)
	if err != nil {
		cli.Fail(cmdName, "opening %s: %v", path, err)
	}
	defer f.Close()
	img, err := earthplus.ReadPGM(f)
	if err != nil {
		cli.Fail(cmdName, "parsing %s: %v", path, err)
	}
	return img
}

func writePGM(path string, img *earthplus.Image) {
	if path == "" {
		cli.Fail(cmdName, "missing -out")
	}
	f, err := os.Create(path)
	if err != nil {
		cli.Fail(cmdName, "creating %s: %v", path, err)
	}
	defer f.Close()
	if err := img.WritePGM(f, 0); err != nil {
		cli.Fail(cmdName, "writing %s: %v", path, err)
	}
}
