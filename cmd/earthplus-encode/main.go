// Command earthplus-encode exposes the repository's layered wavelet codec
// as a standalone tool for 16-bit PGM images: encode to a codestream,
// decode back (optionally truncated to fewer quality layers), and report
// rate/distortion.
//
// Usage:
//
//	earthplus-encode -in image.pgm -out image.epc -bpp 1.0
//	earthplus-encode -decode -in image.epc -out restored.pgm -layers 4
//	earthplus-encode -roundtrip -in image.pgm -bpp 0.5
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/codec"
	"earthplus/internal/raster"
)

func main() {
	in := flag.String("in", "", "input file (PGM for encode, codestream for decode)")
	out := flag.String("out", "", "output file (empty with -roundtrip)")
	bpp := flag.Float64("bpp", 0, "bits per pixel budget (0 = near-lossless)")
	layers := flag.Int("layers", 0, "decode only this many quality layers (0 = all)")
	decode := flag.Bool("decode", false, "decode a codestream back to PGM")
	roundtrip := flag.Bool("roundtrip", false, "encode+decode in memory and report PSNR")
	flag.Parse()

	if *in == "" {
		fail("missing -in")
	}
	switch {
	case *roundtrip:
		img := readPGM(*in)
		opts := codec.DefaultOptions()
		if *bpp > 0 {
			opts.BudgetBytes = codec.BudgetForBPP(*bpp, img.Width, img.Height)
		}
		data, err := codec.EncodePlane(img.Plane(0), img.Width, img.Height, opts)
		if err != nil {
			fail("encode: %v", err)
		}
		plane, w, h, err := codec.DecodePlane(data, *layers)
		if err != nil {
			fail("decode: %v", err)
		}
		rec := raster.New(w, h, img.Bands)
		copy(rec.Plane(0), plane)
		rec.Clamp()
		info, _ := codec.Parse(data)
		fmt.Printf("input    %dx%d (%d pixels)\n", w, h, w*h)
		fmt.Printf("encoded  %d bytes (%.3f bpp), %d layers\n",
			len(data), float64(len(data))*8/float64(w*h), info.NLayers)
		fmt.Printf("PSNR     %.2f dB\n", raster.PSNRBand(img, rec, 0))
	case *decode:
		data, err := os.ReadFile(*in)
		if err != nil {
			fail("reading %s: %v", *in, err)
		}
		plane, w, h, err := codec.DecodePlane(data, *layers)
		if err != nil {
			fail("decode: %v", err)
		}
		img := raster.New(w, h, []raster.BandInfo{{Name: "gray"}})
		copy(img.Plane(0), plane)
		img.Clamp()
		writePGM(*out, img)
		fmt.Printf("decoded %dx%d -> %s\n", w, h, *out)
	default:
		img := readPGM(*in)
		opts := codec.DefaultOptions()
		if *bpp > 0 {
			opts.BudgetBytes = codec.BudgetForBPP(*bpp, img.Width, img.Height)
		}
		data, err := codec.EncodePlane(img.Plane(0), img.Width, img.Height, opts)
		if err != nil {
			fail("encode: %v", err)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fail("writing %s: %v", *out, err)
		}
		fmt.Printf("encoded %dx%d -> %d bytes (%.3f bpp) -> %s\n",
			img.Width, img.Height, len(data),
			float64(len(data))*8/float64(img.Width*img.Height), *out)
	}
}

func readPGM(path string) *raster.Image {
	f, err := os.Open(path)
	if err != nil {
		fail("opening %s: %v", path, err)
	}
	defer f.Close()
	img, err := raster.ReadPGM(f)
	if err != nil {
		fail("parsing %s: %v", path, err)
	}
	return img
}

func writePGM(path string, img *raster.Image) {
	if path == "" {
		fail("missing -out")
	}
	f, err := os.Create(path)
	if err != nil {
		fail("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := img.WritePGM(f, 0); err != nil {
		fail("writing %s: %v", path, err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "earthplus-encode: "+format+"\n", args...)
	os.Exit(1)
}
