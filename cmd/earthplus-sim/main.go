// Command earthplus-sim runs one configurable end-to-end simulation of a
// compression system over a synthetic constellation and prints the summary
// statistics and a per-capture trace. Systems are resolved by name through
// the public registry, so ablation variants registered by other packages
// run unchanged.
//
// Usage:
//
//	earthplus-sim -system earthplus -dataset planet -sats 8 -days 60
//	earthplus-sim -system kodan -dataset rich -gamma 0.5 -trace
//	earthplus-sim -dataset rich -simworkers 8   # shard days across 8 workers
//	earthplus-sim -storage 2000000 -evictpolicy schedule   # bound the on-board store
//	earthplus-sim -storage 2000000 -refcompress   # hold references compressed (decode-on-visit)
//	earthplus-sim -linkloss 0.01 -linkseed 7   # deterministic 1% link fault injection
//	earthplus-sim -sats 16 -stations 2   # contended ground stations, per-contact budgets
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/cli"
	"earthplus/pkg/earthplus"
)

func main() {
	var perf cli.Perf
	var ds cli.Dataset
	var store cli.Storage
	var lnk cli.Link
	var fleet cli.Fleet
	perf.Register(flag.CommandLine)
	ds.Register(flag.CommandLine, "planet", 8)
	store.Register(flag.CommandLine)
	lnk.Register(flag.CommandLine)
	fleet.Register(flag.CommandLine)
	system := flag.String("system", earthplus.SystemEarthPlus,
		fmt.Sprintf("system to run (%v)", earthplus.Systems()))
	days := flag.Int("days", 60, "evaluation days")
	start := flag.Int("start", 40, "first evaluation day")
	gamma := flag.Float64("gamma", 1.0, "bits per pixel per downloaded tile (the paper's γ)")
	trace := flag.Bool("trace", false, "print the per-capture trace")
	dump := flag.String("dump", "", "write the run as a JSON-lines trace to this file")
	flag.Parse()
	cli.MustValidate("earthplus-sim", &store, &lnk, &fleet)
	perf.Apply()

	env, err := ds.Env()
	if err != nil {
		cli.Fail("earthplus-sim", "%v", err)
	}
	env.Parallelism = perf.SimWorkers

	spec := earthplus.SystemSpec{GammaBPP: *gamma}
	store.ApplyToSpec(&spec)
	lnk.ApplyToSpec(&spec)
	fleet.ApplyToSpec(&spec)
	sys, err := earthplus.NewSystem(*system, env, spec)
	if err != nil {
		cli.Fail("earthplus-sim", "%v", err)
	}

	res, err := earthplus.Run(env, sys, *start-30, *start, *start+*days)
	if err != nil {
		cli.Fail("earthplus-sim", "%v", err)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			cli.Fail("earthplus-sim", "%v", err)
		}
		if err := earthplus.WriteTrace(f, res); err != nil {
			cli.Fail("earthplus-sim", "writing trace: %v", err)
		}
		if err := f.Close(); err != nil {
			cli.Fail("earthplus-sim", "%v", err)
		}
		fmt.Printf("trace written to %s\n", *dump)
	}
	if *trace {
		rows := [][]string{{"day", "loc", "sat", "cloud", "dropped", "tiles", "bytes", "PSNR", "refAge", "miss"}}
		for _, r := range res.Records {
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Day),
				fmt.Sprintf("%d", r.Loc),
				fmt.Sprintf("%d", r.Sat),
				fmt.Sprintf("%.0f%%", r.TrueCoverage*100),
				fmt.Sprintf("%v", r.Dropped),
				fmt.Sprintf("%.0f%%", r.DownTileFrac*100),
				fmt.Sprintf("%d", r.DownBytes),
				fmt.Sprintf("%.1f", r.PSNR),
				fmt.Sprintf("%d", r.RefAge),
				fmt.Sprintf("%v", r.RefMiss),
			})
		}
		earthplus.Table(os.Stdout, rows)
		fmt.Println()
	}
	s := earthplus.Summarize(res, env.Downlink)
	fmt.Printf("system              %s\n", sys.Name())
	fmt.Printf("captures            %d (%d dropped)\n", s.Captures, s.Dropped)
	fmt.Printf("mean PSNR           %.1f dB\n", s.MeanPSNR)
	fmt.Printf("mean tiles/capture  %.0f%%\n", s.MeanTileFrac*100)
	fmt.Printf("mean bytes/capture  %.0f\n", s.MeanDownBytes)
	if s.RequiredDownlinkBps >= 1e6 {
		fmt.Printf("required downlink   %.2f Mbps\n", s.RequiredDownlinkBps/1e6)
	} else {
		fmt.Printf("required downlink   %.2f kbps\n", s.RequiredDownlinkBps/1e3)
	}
	fmt.Printf("mean reference age  %.1f days\n", s.MeanRefAge)
	fmt.Printf("uplink used         %.0f bytes/day\n", s.MeanUpBytesPerDay)
}
