// Command earthplus-sim runs one configurable end-to-end simulation of a
// compression system over a synthetic constellation and prints the summary
// statistics and a per-capture trace.
//
// Usage:
//
//	earthplus-sim -system earthplus -dataset planet -sats 8 -days 60
//	earthplus-sim -system kodan -dataset rich -gamma 0.5 -trace
//	earthplus-sim -dataset rich -simworkers 8   # shard days across 8 workers
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/baseline"
	"earthplus/internal/codec"
	"earthplus/internal/core"
	"earthplus/internal/link"
	"earthplus/internal/metrics"
	"earthplus/internal/orbit"
	"earthplus/internal/scene"
	"earthplus/internal/sim"
)

func main() {
	system := flag.String("system", "earthplus", "system to run: earthplus | kodan | satroi")
	dataset := flag.String("dataset", "planet", "dataset: rich | planet | planet-natural")
	sats := flag.Int("sats", 8, "number of satellites in the constellation")
	days := flag.Int("days", 60, "evaluation days")
	start := flag.Int("start", 40, "first evaluation day")
	gamma := flag.Float64("gamma", 1.0, "bits per pixel per downloaded tile (the paper's γ)")
	fullSize := flag.Bool("fullsize", false, "use the larger scene size")
	trace := flag.Bool("trace", false, "print the per-capture trace")
	dump := flag.String("dump", "", "write the run as a JSON-lines trace to this file")
	parallel := flag.Int("parallel", 0,
		"bands encoded/decoded concurrently per image (0 = GOMAXPROCS)")
	simWorkers := flag.Int("simworkers", 0,
		"locations simulated concurrently per day (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
	flag.Parse()

	codec.Parallelism = *parallel

	size := scene.Quick
	if *fullSize {
		size = scene.Full
	}
	var cfg scene.Config
	var cons orbit.Constellation
	switch *dataset {
	case "rich":
		cfg = scene.RichContent(size)
		cons = orbit.Constellation{Satellites: 2, RevisitDays: 10}
	case "planet-natural":
		cfg = scene.LargeConstellation(size)
		cons = orbit.Constellation{Satellites: *sats, RevisitDays: 12}
	default:
		cfg = scene.LargeConstellationSampled(size)
		cons = orbit.Constellation{Satellites: *sats, RevisitDays: 12}
	}
	if *dataset != "rich" {
		cons.Satellites = *sats
	}

	env := &sim.Env{
		Scene:       scene.New(cfg),
		Orbit:       cons,
		Downlink:    link.Budget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
		Parallelism: *simWorkers,
	}
	var sys sim.System
	var err error
	switch *system {
	case "kodan":
		sys, err = baseline.NewKodan(env, *gamma, codec.DefaultOptions())
	case "satroi":
		sys, err = baseline.NewSatRoI(env, *gamma, codec.DefaultOptions())
	default:
		c := core.DefaultConfig()
		c.GammaBPP = *gamma
		sys, err = core.New(env, c)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "earthplus-sim: %v\n", err)
		os.Exit(1)
	}

	res, err := sim.Run(env, sys, *start-30, *start, *start+*days)
	if err != nil {
		fmt.Fprintf(os.Stderr, "earthplus-sim: %v\n", err)
		os.Exit(1)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "earthplus-sim: %v\n", err)
			os.Exit(1)
		}
		if err := sim.WriteTrace(f, res); err != nil {
			fmt.Fprintf(os.Stderr, "earthplus-sim: writing trace: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "earthplus-sim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to %s\n", *dump)
	}
	if *trace {
		rows := [][]string{{"day", "loc", "sat", "cloud", "dropped", "tiles", "bytes", "PSNR", "refAge"}}
		for _, r := range res.Records {
			rows = append(rows, []string{
				fmt.Sprintf("%d", r.Day),
				fmt.Sprintf("%d", r.Loc),
				fmt.Sprintf("%d", r.Sat),
				fmt.Sprintf("%.0f%%", r.TrueCoverage*100),
				fmt.Sprintf("%v", r.Dropped),
				fmt.Sprintf("%.0f%%", r.DownTileFrac*100),
				fmt.Sprintf("%d", r.DownBytes),
				fmt.Sprintf("%.1f", r.PSNR),
				fmt.Sprintf("%d", r.RefAge),
			})
		}
		metrics.Table(os.Stdout, rows)
		fmt.Println()
	}
	s := sim.Summarize(res, env.Downlink)
	fmt.Printf("system              %s\n", sys.Name())
	fmt.Printf("captures            %d (%d dropped)\n", s.Captures, s.Dropped)
	fmt.Printf("mean PSNR           %.1f dB\n", s.MeanPSNR)
	fmt.Printf("mean tiles/capture  %.0f%%\n", s.MeanTileFrac*100)
	fmt.Printf("mean bytes/capture  %.0f\n", s.MeanDownBytes)
	if s.RequiredDownlinkBps >= 1e6 {
		fmt.Printf("required downlink   %.2f Mbps\n", s.RequiredDownlinkBps/1e6)
	} else {
		fmt.Printf("required downlink   %.2f kbps\n", s.RequiredDownlinkBps/1e3)
	}
	fmt.Printf("mean reference age  %.1f days\n", s.MeanRefAge)
	fmt.Printf("uplink used         %.0f bytes/day\n", s.MeanUpBytesPerDay)
}
