// Command earthplus-serve runs the Earth+ HTTP serving layer: the
// container codec behind /v1/encode and /v1/decode plus deployment
// introspection at /v1/info, operational counters at /metrics and a
// liveness probe at /healthz — with a content-addressed result cache
// (optionally persisted across restarts), per-client token-bucket rate
// limiting, request coalescing, a bounded worker pool, and graceful
// shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	earthplus-serve -addr :8080
//	earthplus-serve -addr :8080 -concurrency 16 -bpp 1.0 -parallel 4
//	earthplus-serve -cachedir /var/cache/earthplus -cachedisk 4294967296 \
//	    -ratelimit 50 -rateburst 100 -clientheader X-Client-Id
//
//	curl -X POST --data-binary @samples.raw \
//	    'localhost:8080/v1/encode?width=192&height=192&bands=4&lossless=1' > frame.epc
//	curl -X POST --data-binary @frame.epc 'localhost:8080/v1/decode' > samples.raw
//	curl localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"earthplus/internal/cli"
	"earthplus/pkg/earthplus"
	"earthplus/pkg/earthplus/serve"
)

const cmdName = "earthplus-serve"

func main() {
	var perf cli.Perf
	perf.RegisterCodec(flag.CommandLine)
	addr := flag.String("addr", ":8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "max concurrent encode/decode requests (0 = GOMAXPROCS)")
	queueWait := flag.Duration("queuewait", 10*time.Second, "how long a request may queue for a worker slot")
	maxBody := flag.Int64("maxbody", 256<<20, "request body size limit in bytes")
	bpp := flag.Float64("bpp", 1.0, "default encode budget in bits per pixel per band")
	shutdownWait := flag.Duration("shutdownwait", 10*time.Second, "graceful shutdown drain window")
	reqTimeout := flag.Duration("reqtimeout", 30*time.Second,
		"per-request processing deadline; overruns get 503 with Retry-After (negative = no deadline)")
	cacheMem := flag.Int64("cachemem", 0,
		"in-memory result-cache budget in bytes (0 = 64 MiB, negative = disable the memory tier)")
	cacheDir := flag.String("cachedir", "",
		"persistent result-cache directory; cached responses survive restarts (empty = memory-only)")
	cacheDisk := flag.Int64("cachedisk", 0,
		"on-disk result-cache budget in bytes (0 = 1 GiB; needs -cachedir)")
	rateLimit := flag.Float64("ratelimit", 0,
		"per-client token-bucket refill in requests/s; a dry bucket gets 429 with escalating Retry-After (0 = unlimited)")
	rateBurst := flag.Int("rateburst", 0,
		"per-client bucket capacity in requests (0 = one second's refill, minimum 1)")
	clientHeader := flag.String("clientheader", "",
		"request header carrying the rate-limit client identity, for deployments behind a trusted proxy (empty = remote IP)")
	flag.Parse()
	perf.Apply()

	cfg := serve.Config{
		MaxConcurrent:  *concurrency,
		QueueWait:      *queueWait,
		MaxBodyBytes:   *maxBody,
		DefaultBPP:     *bpp,
		RequestTimeout: *reqTimeout,
		CacheMemBytes:  *cacheMem,
		CacheDir:       *cacheDir,
		CacheDiskBytes: *cacheDisk,
		RatePerSec:     *rateLimit,
		RateBurst:      *rateBurst,
		ClientHeader:   *clientHeader,
	}
	cli.MustValidate(cmdName, cfg)
	srv := serve.New(cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Printf("%s: %s API %s listening on %s (systems: %v)\n",
		cmdName, earthplus.Version, earthplus.APIVersion, *addr, earthplus.Systems())

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			cli.Fail(cmdName, "%v", err)
		}
	case <-ctx.Done():
		stop()
		fmt.Printf("%s: shutting down (draining up to %v)\n", cmdName, *shutdownWait)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			cli.Fail(cmdName, "shutdown: %v", err)
		}
	}
}
