// Command earthplus-bench regenerates every table and figure of the
// paper's evaluation section and prints them as text. By default it runs
// at the quick scale; -full runs closer to paper scale (expect a long
// run), and -only selects a single artefact.
//
// Usage:
//
//	earthplus-bench            # every experiment, quick scale
//	earthplus-bench -full      # every experiment, full scale
//	earthplus-bench -only fig11b
//	earthplus-bench -only codecbench   # codec perf snapshot -> BENCH_codec.json
//	earthplus-bench -only simbench     # sim engine snapshot -> BENCH_sim.json
//	earthplus-bench -parallel 8        # bound per-image band workers
//	earthplus-bench -simworkers 8      # bound per-day location shards
//	earthplus-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"earthplus/internal/codec"
	"earthplus/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run at full (paper-ish) scale instead of quick")
	only := flag.String("only", "", "run a single experiment (see -list)")
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	parallel := flag.Int("parallel", 0,
		"bands encoded/decoded concurrently per image (0 = GOMAXPROCS)")
	simWorkers := flag.Int("simworkers", 0,
		"locations simulated concurrently per day (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
	benchJSON := flag.String("benchjson", "BENCH_codec.json",
		"where codecbench writes its JSON snapshot (empty = don't write)")
	simBenchJSON := flag.String("simbenchjson", "BENCH_sim.json",
		"where simbench writes its JSON snapshot (empty = don't write)")
	flag.Parse()

	codec.Parallelism = *parallel
	experiments.SimWorkers = *simWorkers

	sc := experiments.QuickScale()
	if *full {
		sc = experiments.FullScale()
	}

	type job struct {
		key string
		run func() (experiments.Result, error)
	}
	jobs := []job{
		{"table1", func() (experiments.Result, error) { return experiments.Table1(), nil }},
		{"table2", func() (experiments.Result, error) { return experiments.Table2(sc), nil }},
		{"fig4", func() (experiments.Result, error) { return experiments.Fig4(sc), nil }},
		{"fig5", func() (experiments.Result, error) { return experiments.Fig5(sc), nil }},
		{"fig8", func() (experiments.Result, error) { return experiments.Fig8(sc), nil }},
		{"fig11a", func() (experiments.Result, error) { return experiments.Fig11(sc, experiments.RichContent) }},
		{"fig11b", func() (experiments.Result, error) { return experiments.Fig11(sc, experiments.PlanetSampled) }},
		{"fig12", func() (experiments.Result, error) { return experiments.Fig12(sc) }},
		{"fig13", func() (experiments.Result, error) { return experiments.Fig13(sc) }},
		{"fig14", func() (experiments.Result, error) { return experiments.Fig14(sc) }},
		{"fig15", func() (experiments.Result, error) { return experiments.Fig15(sc) }},
		{"fig16", func() (experiments.Result, error) { return experiments.Fig16(sc) }},
		{"fig17", func() (experiments.Result, error) { return experiments.Fig17(sc) }},
		{"fig18", func() (experiments.Result, error) { return experiments.Fig18(sc) }},
		{"fig19", func() (experiments.Result, error) { return experiments.Fig19(sc) }},
		{"ablation-theta", func() (experiments.Result, error) { return experiments.AblationTheta(sc) }},
		{"ablation-guarantee", func() (experiments.Result, error) { return experiments.AblationGuarantee(sc) }},
		{"ablation-reject", func() (experiments.Result, error) { return experiments.AblationReject(sc) }},
		{"codecbench", func() (experiments.Result, error) { return experiments.CodecBench(*benchJSON) }},
		{"simbench", func() (experiments.Result, error) { return experiments.SimBench(*simBenchJSON) }},
	}

	if *list {
		var keys []string
		for _, j := range jobs {
			keys = append(keys, j.key)
		}
		sort.Strings(keys)
		fmt.Println(strings.Join(keys, "\n"))
		return
	}

	ran := 0
	for _, j := range jobs {
		if *only != "" && j.key != strings.ToLower(*only) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "earthplus-bench: %s: %v\n", j.key, err)
			os.Exit(1)
		}
		fmt.Printf("===== %s (%s, %.1fs) =====\n", res.ID(), j.key, time.Since(t0).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "earthplus-bench: rendering %s: %v\n", j.key, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "earthplus-bench: unknown experiment %q (try -list)\n", *only)
		os.Exit(1)
	}
}
