// Command earthplus-bench regenerates every table and figure of the
// paper's evaluation section and prints them as text. By default it runs
// at the quick scale; -full runs closer to paper scale (expect a long
// run), and -only selects a single artefact.
//
// Usage:
//
//	earthplus-bench            # every experiment, quick scale
//	earthplus-bench -full      # every experiment, full scale
//	earthplus-bench -only fig11b
//	earthplus-bench -only codecbench   # codec perf snapshot -> BENCH_codec.json
//	earthplus-bench -only simbench     # sim engine snapshot -> BENCH_sim.json
//	earthplus-bench -only servebench   # serving-tier load snapshot -> BENCH_serve.json
//	earthplus-bench -only constsweep   # contended ground-station sweep
//	earthplus-bench -only simscale     # engine worker-scaling probe
//	earthplus-bench -parallel 8        # bound per-image band workers
//	earthplus-bench -simworkers 8      # bound per-day location shards
//	earthplus-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"earthplus/internal/cli"
	"earthplus/internal/servebench"
	"earthplus/pkg/earthplus"
)

func main() {
	var perf cli.Perf
	var store cli.Storage
	var lnk cli.Link
	var fleet cli.Fleet
	perf.Register(flag.CommandLine)
	store.Register(flag.CommandLine)
	lnk.Register(flag.CommandLine)
	fleet.Register(flag.CommandLine)
	full := flag.Bool("full", false, "run at full (paper-ish) scale instead of quick")
	only := flag.String("only", "", "run a single experiment (see -list)")
	list := flag.Bool("list", false, "list experiment identifiers and exit")
	benchJSON := flag.String("benchjson", "BENCH_codec.json",
		"where codecbench writes its JSON snapshot (empty = don't write)")
	simBenchJSON := flag.String("simbenchjson", "BENCH_sim.json",
		"where simbench writes its JSON snapshot (empty = don't write)")
	serveBenchJSON := flag.String("servebenchjson", "BENCH_serve.json",
		"where servebench writes its JSON snapshot (empty = don't write)")
	flag.Parse()
	cli.MustValidate("earthplus-bench", &store, &lnk, &fleet)
	perf.Apply()
	store.Apply()
	lnk.Apply()
	fleet.Apply()

	sc := earthplus.QuickScale()
	if *full {
		sc = earthplus.FullScale()
	}
	jobs := earthplus.Experiments(sc, *benchJSON, *simBenchJSON)
	// The serving-tier load snapshot lives outside the public catalog:
	// internal/experiments sits below pkg/earthplus in the import graph and
	// so cannot reach pkg/earthplus/serve; appending the job here keeps the
	// Experiments signature stable.
	jobs = append(jobs, earthplus.ExperimentJob{
		Key: "servebench",
		Run: func() (earthplus.ExperimentResult, error) {
			return servebench.Run(*serveBenchJSON)
		},
	})

	if *list {
		var keys []string
		for _, j := range jobs {
			keys = append(keys, j.Key)
		}
		sort.Strings(keys)
		fmt.Println(strings.Join(keys, "\n"))
		return
	}

	ran := 0
	for _, j := range jobs {
		if *only != "" && j.Key != strings.ToLower(*only) {
			continue
		}
		ran++
		t0 := time.Now()
		res, err := j.Run()
		if err != nil {
			cli.Fail("earthplus-bench", "%s: %v", j.Key, err)
		}
		fmt.Printf("===== %s (%s, %.1fs) =====\n", res.ID(), j.Key, time.Since(t0).Seconds())
		if err := res.Render(os.Stdout); err != nil {
			cli.Fail("earthplus-bench", "rendering %s: %v", j.Key, err)
		}
		fmt.Println()
	}
	if ran == 0 {
		cli.Fail("earthplus-bench", "unknown experiment %q (try -list)", *only)
	}
}
