// Command earthplus-scene renders the synthetic Earth-observation scene to
// PGM images so the datasets can be inspected with standard tooling: the
// cloud-free ground truth, the sensed capture, and the true cloud mask of
// any (dataset, location, day, band).
//
// Usage:
//
//	earthplus-scene -dataset rich -loc 3 -day 380 -band 1 -out /tmp/snowfield
//	earthplus-scene -dataset planet -day 45 -out /tmp/coastal
//
// writes <out>-truth.pgm, <out>-capture.pgm and <out>-clouds.pgm.
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/raster"
	"earthplus/internal/scene"
)

func main() {
	dataset := flag.String("dataset", "rich", "dataset: rich | planet | planet-sampled")
	loc := flag.Int("loc", 0, "location index")
	day := flag.Int("day", 0, "simulation day")
	sat := flag.Int("sat", 0, "capturing satellite id")
	band := flag.Int("band", 0, "band index to render")
	fullSize := flag.Bool("fullsize", false, "use the larger scene size")
	out := flag.String("out", "scene", "output path prefix")
	flag.Parse()

	size := scene.Quick
	if *fullSize {
		size = scene.Full
	}
	var cfg scene.Config
	switch *dataset {
	case "planet":
		cfg = scene.LargeConstellation(size)
	case "planet-sampled":
		cfg = scene.LargeConstellationSampled(size)
	default:
		cfg = scene.RichContent(size)
	}
	if *loc < 0 || *loc >= len(cfg.Locations) {
		fail("location %d out of range (dataset has %d)", *loc, len(cfg.Locations))
	}
	if *band < 0 || *band >= len(cfg.Bands) {
		fail("band %d out of range (dataset has %d)", *band, len(cfg.Bands))
	}

	s := scene.New(cfg)
	cap := s.CaptureImage(*loc, *day, *sat)
	fmt.Printf("%s location %q (%s), day %d, band %s: cloud coverage %.1f%%\n",
		*dataset, cfg.Locations[*loc].Name, cfg.Locations[*loc].Content,
		*day, cfg.Bands[*band].Name, cap.Coverage*100)

	writeBand(*out+"-truth.pgm", cap.Truth, *band)
	writeBand(*out+"-capture.pgm", cap.Image, *band)

	mask := raster.New(cap.Image.Width, cap.Image.Height, []raster.BandInfo{{Name: "clouds"}})
	for i, cloudy := range cap.TrueCloud.Bits {
		if cloudy {
			mask.Plane(0)[i] = 1
		}
	}
	writeBand(*out+"-clouds.pgm", mask, 0)
	fmt.Printf("wrote %s-{truth,capture,clouds}.pgm\n", *out)
}

func writeBand(path string, im *raster.Image, band int) {
	f, err := os.Create(path)
	if err != nil {
		fail("creating %s: %v", path, err)
	}
	defer f.Close()
	if err := im.WritePGM(f, band); err != nil {
		fail("writing %s: %v", path, err)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "earthplus-scene: "+format+"\n", args...)
	os.Exit(1)
}
