// Command earthplus-scene renders the synthetic Earth-observation scene to
// PGM images so the datasets can be inspected with standard tooling: the
// cloud-free ground truth, the sensed capture, and the true cloud mask of
// any (dataset, location, day, band).
//
// Usage:
//
//	earthplus-scene -dataset rich -loc 3 -day 380 -band 1 -out /tmp/snowfield
//	earthplus-scene -dataset planet -day 45 -out /tmp/coastal
//
// writes <out>-truth.pgm, <out>-capture.pgm and <out>-clouds.pgm.
//
// Dataset names are unified with the other cmds: "planet" is the
// cloud-sampled Planet dataset (as the paper evaluates it) and
// "planet-natural" keeps the natural cloud regime. Earlier releases of
// this tool used "planet" for the natural variant — pass -dataset
// planet-natural to render those scenes.
package main

import (
	"flag"
	"fmt"
	"os"

	"earthplus/internal/cli"
	"earthplus/pkg/earthplus"
)

const cmdName = "earthplus-scene"

func main() {
	var ds cli.Dataset
	ds.Register(flag.CommandLine, "rich", 8)
	loc := flag.Int("loc", 0, "location index")
	day := flag.Int("day", 0, "simulation day")
	sat := flag.Int("sat", 0, "capturing satellite id")
	band := flag.Int("band", 0, "band index to render")
	out := flag.String("out", "scene", "output path prefix")
	flag.Parse()

	cfg, err := ds.SceneConfig()
	if err != nil {
		cli.Fail(cmdName, "%v", err)
	}
	if *loc < 0 || *loc >= len(cfg.Locations) {
		cli.Fail(cmdName, "location %d out of range (dataset has %d)", *loc, len(cfg.Locations))
	}
	if *band < 0 || *band >= len(cfg.Bands) {
		cli.Fail(cmdName, "band %d out of range (dataset has %d)", *band, len(cfg.Bands))
	}

	s := earthplus.NewScene(cfg)
	cap := s.CaptureImage(*loc, *day, *sat)
	defer s.ReleaseCapture(cap)
	fmt.Printf("%s location %q (%s), day %d, band %s: cloud coverage %.1f%%\n",
		ds.Name, cfg.Locations[*loc].Name, cfg.Locations[*loc].Content,
		*day, cfg.Bands[*band].Name, cap.Coverage*100)

	writeBand(*out+"-truth.pgm", cap.Truth, *band)
	writeBand(*out+"-capture.pgm", cap.Image, *band)

	mask := earthplus.NewImage(cap.Image.Width, cap.Image.Height, []earthplus.BandInfo{{Name: "clouds"}})
	for i, cloudy := range cap.TrueCloud.Bits {
		if cloudy {
			mask.Plane(0)[i] = 1
		}
	}
	writeBand(*out+"-clouds.pgm", mask, 0)
	fmt.Printf("wrote %s-{truth,capture,clouds}.pgm\n", *out)
}

func writeBand(path string, im *earthplus.Image, band int) {
	f, err := os.Create(path)
	if err != nil {
		cli.Fail(cmdName, "creating %s: %v", path, err)
	}
	defer f.Close()
	if err := im.WritePGM(f, band); err != nil {
		cli.Fail(cmdName, "writing %s: %v", path, err)
	}
}
