package earthplus

import (
	"earthplus/internal/registry"

	// The built-in systems self-register with the registry in their init
	// functions; importing the public API guarantees they are available.
	_ "earthplus/internal/baseline"
	_ "earthplus/internal/core"
)

// Registered names of the built-in systems.
const (
	// SystemEarthPlus is the paper's contribution: constellation-wide
	// reference-based on-board compression.
	SystemEarthPlus = "earthplus"
	// SystemKodan discards cloudy data with an expensive on-board
	// detector and downloads every remaining tile (§6.1).
	SystemKodan = "kodan"
	// SystemSatRoI runs reference-based encoding against a fixed
	// on-board reference that is never refreshed (§6.1).
	SystemSatRoI = "satroi"
)

// SystemSpec is the unified system configuration: γ (bits per pixel per
// downloaded tile), an optional change threshold θ, codec options, and
// system-specific knobs by name under Params (for Earth+:
// "guarantee_days", "guarantee_max_cloud", "reject_cloud_frac",
// "ref_downsample", "lookahead_days", "drop_coverage", "ref_bpp",
// "storage_bytes") and StrParams (for Earth+ and SatRoI:
// "evict_policy" = "lru" | "schedule"). "storage_bytes" bounds the
// on-board reference store (explicit non-positive = unlimited; absent =
// the Table 1 default of 360 GB); SatRoI shares both storage knobs so
// the storage sweep bounds its full-resolution store the same way.
// The zero value means the system's defaults; unknown Params or
// StrParams keys are a CodeBadConfig error.
type SystemSpec = registry.Spec

// SystemFactory builds a configured system for an environment.
type SystemFactory = registry.Factory

// Register installs a system factory under a new name, making it
// constructible by NewSystem, the experiment sweeps and the serving
// layer. Registering a taken name panics.
func Register(name string, factory SystemFactory) { registry.Register(name, factory) }

// NewSystem builds the named system for env. Unknown names return a
// CodeUnknownSystem error listing what is registered.
func NewSystem(name string, env *Env, spec SystemSpec) (System, error) {
	return registry.New(name, env, spec)
}

// Systems lists the registered system names, sorted.
func Systems() []string { return registry.Names() }
