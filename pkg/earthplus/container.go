package earthplus

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"

	"earthplus/internal/codec"
	"earthplus/internal/container"
	"earthplus/internal/eperr"
)

// Codestream is one framed multi-band codestream — the wire unit of the
// API. See the package documentation for the frame layout.
type Codestream = container.Codestream

// Container frame identity, exposed for protocol negotiation (the
// serving layer reports both from /v1/info).
const (
	ContainerMagic   = container.Magic
	ContainerVersion = container.Version
	// ContainerVersionTiled is the frame version carried by frames whose
	// bands use the tiled (EPT1) codestream profile.
	ContainerVersionTiled = container.VersionTiled
)

// PackCodestream frames a per-band codestream set (nil = absent band)
// into one Codestream. The inverse is Codestream.Split.
func PackCodestream(bands [][]byte) Codestream { return container.Pack(bands) }

// ReadCodestream assembles one frame from a stream, validating its CRC.
// It returns io.EOF unwrapped when the stream ends cleanly before a frame
// starts.
func ReadCodestream(r io.Reader) (Codestream, error) { return container.ReadFrom(r) }

// minBandBudget is the smallest per-band byte budget Encode accepts — the
// codec's own rate-control floor, shared with every internal encode site.
const minBandBudget = codec.MinBudgetBytes

// EncodeOptions configures an Encoder.
type EncodeOptions struct {
	// BPP is the bits-per-pixel budget per band (the paper's γ applied
	// image-wide). Zero encodes every bit plane (highest lossy quality).
	BPP float64
	// Lossless switches to the reversible integer 5/3 path: decoding
	// reproduces the image exactly at 16-bit sample precision. BPP is
	// ignored (lossless has no rate control), and so is Tiled — the
	// lossless profile is monolithic.
	Lossless bool
	// Tiled selects the tiled (EPT1) codestream profile: each band is
	// coded as independent 64x64 tiles with a per-tile index, so regions
	// decode in time proportional to the tiles they touch
	// (DecodeFrameRegion) and the wire frame carries the v2 container
	// version. Encoding is also substantially faster than the monolithic
	// profile (run-length Golomb-Rice tile coding instead of one
	// image-wide bit-plane pass), at a modest rate-distortion cost.
	Tiled bool
	// Levels is the DWT decomposition depth (0 = the default 5).
	Levels int
	// Parallelism bounds the bands coded concurrently per image (0 =
	// the codec package default).
	Parallelism int
}

// codecOptions lowers EncodeOptions onto codec plane options for a
// w x h plane, validating the budget floor.
func (o EncodeOptions) codecOptions(w, h int) (codec.Options, error) {
	opt := codec.DefaultOptions()
	if o.Levels > 0 {
		opt.Levels = o.Levels
	}
	opt.Parallelism = o.Parallelism
	opt.Tiled = o.Tiled && !o.Lossless
	if o.BPP < 0 {
		return opt, eperr.New(eperr.BadConfig, "earthplus", "negative BPP %v", o.BPP)
	}
	if o.BPP > 0 && !o.Lossless {
		opt.BudgetBytes = codec.BudgetForBPP(o.BPP, w, h)
		if opt.BudgetBytes < minBandBudget {
			return opt, eperr.New(eperr.BudgetTooSmall, "earthplus",
				"%.4f bpp on a %dx%d plane is a %d-byte band budget; the floor is %d",
				o.BPP, w, h, opt.BudgetBytes, minBandBudget)
		}
	}
	return opt, nil
}

// Encoder writes container frames — one per image — to an io.Writer.
type Encoder struct {
	w    io.Writer
	opts EncodeOptions
}

// NewEncoder returns an Encoder writing frames with the given options.
func NewEncoder(w io.Writer, opts EncodeOptions) *Encoder {
	return &Encoder{w: w, opts: opts}
}

// Encode compresses img into one container frame and writes it. Bands
// are coded concurrently; ctx cancellation is observed between bands and
// reported as a CodeCanceled error without writing a partial frame.
func (e *Encoder) Encode(ctx context.Context, img *Image) error {
	frame, err := EncodeFrame(ctx, img, e.opts)
	if err != nil {
		return err
	}
	if _, err := frame.WriteTo(e.w); err != nil {
		return fmt.Errorf("earthplus: writing frame: %w", err)
	}
	return nil
}

// EncodeFrame compresses img into one container frame in memory — the
// Encoder without the writer, for callers that transport frames
// themselves.
func EncodeFrame(ctx context.Context, img *Image, opts EncodeOptions) (Codestream, error) {
	if img == nil || img.NumBands() == 0 || img.Width <= 0 || img.Height <= 0 {
		return nil, eperr.New(eperr.BadImage, "earthplus", "nil or empty image")
	}
	if img.NumBands() > container.MaxBands {
		return nil, eperr.New(eperr.BadImage, "earthplus",
			"%d bands exceeds the %d-band frame bound", img.NumBands(), container.MaxBands)
	}
	opt, err := opts.codecOptions(img.Width, img.Height)
	if err != nil {
		return nil, err
	}
	nb := img.NumBands()
	bands := make([][]byte, nb)
	errs := make([]error, nb)
	codec.ParallelBands(opts.Parallelism, nb, func(b int) {
		if ctx.Err() != nil {
			errs[b] = eperr.Wrap(eperr.Canceled, "earthplus", ctx.Err())
			return
		}
		var data []byte
		var err error
		if opts.Lossless {
			data, err = codec.EncodePlaneLossless(img.Plane(b), img.Width, img.Height, opt.Levels)
		} else {
			data, err = codec.EncodePlane(img.Plane(b), img.Width, img.Height, opt)
		}
		if err != nil {
			errs[b] = fmt.Errorf("earthplus: band %d: %w", b, err)
			return
		}
		bands[b] = data
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return container.Pack(bands), nil
}

// Decoder reads container frames from an io.Reader and decodes them back
// to images.
type Decoder struct {
	r io.Reader
	// Bands optionally names the decoded bands; when nil or mismatched in
	// count, generic metadata is synthesised (frames do not carry band
	// descriptions).
	Bands []BandInfo
	// MaxLayers truncates lossy decodes to the first quality layers
	// (<= 0 = all) — the layered codec's degraded-downlink mode.
	MaxLayers int
}

// NewDecoder returns a Decoder reading frames from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// Decode reads and decodes the stream's next frame. It returns io.EOF
// unwrapped at the clean end of the stream, and a CodeBadCodestream
// error for malformed frames. ctx cancellation is observed between bands.
func (d *Decoder) Decode(ctx context.Context) (*Image, error) {
	frame, err := container.ReadFrom(d.r)
	if err != nil {
		return nil, err
	}
	return DecodeFrame(ctx, frame, d.Bands, d.MaxLayers)
}

// DecodeFrame decodes one in-memory container frame — the Decoder
// without the reader. Every band must be present: an image frame with
// holes is malformed (ROI'd simulation downloads are applied by the
// ground segment, not decoded standalone).
func DecodeFrame(ctx context.Context, frame Codestream, bandInfo []BandInfo, maxLayers int) (*Image, error) {
	streams, err := frame.Split()
	if err != nil {
		return nil, err
	}
	if len(streams) == 0 {
		return nil, eperr.New(eperr.BadCodestream, "earthplus", "frame carries no bands")
	}
	for b, s := range streams {
		if s == nil {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "image frame is missing band %d", b)
		}
		if len(s) < 4 {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "band %d payload is %d bytes", b, len(s))
		}
		if b > 0 && !bytes.Equal(s[:4], streams[0][:4]) {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "band %d mixes codec modes within one frame", b)
		}
	}
	if len(bandInfo) != len(streams) {
		bandInfo = make([]BandInfo, len(streams))
		for b := range bandInfo {
			bandInfo[b].Name = fmt.Sprintf("band%d", b)
		}
	}
	// Probe band 0 for the geometry, then decode the rest concurrently.
	plane0, w, h, err := decodeBand(streams[0], maxLayers)
	if err != nil {
		return nil, fmt.Errorf("earthplus: band 0: %w", err)
	}
	img := NewImage(w, h, bandInfo)
	copy(img.Plane(0), plane0)
	nb := len(streams)
	errs := make([]error, nb)
	codec.ParallelBands(0, nb-1, func(i int) {
		b := i + 1
		if ctx.Err() != nil {
			errs[b] = eperr.Wrap(eperr.Canceled, "earthplus", ctx.Err())
			return
		}
		plane, bw, bh, err := decodeBand(streams[b], maxLayers)
		if err != nil {
			errs[b] = fmt.Errorf("earthplus: band %d: %w", b, err)
			return
		}
		if bw != w || bh != h {
			errs[b] = eperr.New(eperr.BadCodestream, "earthplus",
				"band %d geometry %dx%d differs from band 0's %dx%d", b, bw, bh, w, h)
			return
		}
		copy(img.Plane(b), plane)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	img.Clamp()
	return img, nil
}

// DecodeFrameRegion decodes the sub-rectangle [x,x+w) x [y,y+h) of an
// in-memory container frame, clipped to the plane bounds, returning an
// image of the clipped region. On the tiled (EPT1) profile only the
// tiles intersecting the rectangle are entropy-decoded — O(tiles
// touched), independent of the frame size; monolithic and lossless
// frames fall back to a full decode plus crop, so the call is correct on
// every profile. Quality-layer truncation does not apply to region
// decodes.
func DecodeFrameRegion(ctx context.Context, frame Codestream, bandInfo []BandInfo, x, y, w, h int) (*Image, error) {
	streams, err := frame.Split()
	if err != nil {
		return nil, err
	}
	if len(streams) == 0 {
		return nil, eperr.New(eperr.BadCodestream, "earthplus", "frame carries no bands")
	}
	for b, s := range streams {
		if s == nil {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "image frame is missing band %d", b)
		}
		if len(s) < 4 {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "band %d payload is %d bytes", b, len(s))
		}
		if b > 0 && !bytes.Equal(s[:4], streams[0][:4]) {
			return nil, eperr.New(eperr.BadCodestream, "earthplus", "band %d mixes codec modes within one frame", b)
		}
	}
	if len(bandInfo) != len(streams) {
		bandInfo = make([]BandInfo, len(streams))
		for b := range bandInfo {
			bandInfo[b].Name = fmt.Sprintf("band%d", b)
		}
	}
	// Probe band 0 for the clipped geometry, then decode the rest
	// concurrently.
	plane0, cw, ch, err := codec.DecodeRegion(streams[0], x, y, w, h)
	if err != nil {
		return nil, fmt.Errorf("earthplus: band 0: %w", err)
	}
	img := NewImage(cw, ch, bandInfo)
	copy(img.Plane(0), plane0)
	nb := len(streams)
	errs := make([]error, nb)
	codec.ParallelBands(0, nb-1, func(i int) {
		b := i + 1
		if ctx.Err() != nil {
			errs[b] = eperr.Wrap(eperr.Canceled, "earthplus", ctx.Err())
			return
		}
		plane, bw, bh, err := codec.DecodeRegion(streams[b], x, y, w, h)
		if err != nil {
			errs[b] = fmt.Errorf("earthplus: band %d: %w", b, err)
			return
		}
		if bw != cw || bh != ch {
			errs[b] = eperr.New(eperr.BadCodestream, "earthplus",
				"band %d region geometry %dx%d differs from band 0's %dx%d", b, bw, bh, cw, ch)
			return
		}
		copy(img.Plane(b), plane)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	img.Clamp()
	return img, nil
}

// FrameTiled reports whether a frame carries the tiled (EPT1) codestream
// profile, without CRC-validating or decoding any payload.
func FrameTiled(frame Codestream) bool { return frame.Tiled() }

// FrameDims parses a frame's structure and every band's codec header and
// reports the plane geometry and band count without CRC-validating or
// decoding any payload — the cheap pre-flight for resource limits before
// committing to a full DecodeFrame. Every present band must claim the
// same geometry, so the reported width and height bound the decode work
// of the whole frame, not just its first band.
func FrameDims(frame Codestream) (width, height, bands int, err error) {
	streams, err := frame.SplitNoCRC()
	if err != nil {
		return 0, 0, 0, err
	}
	seen := false
	for b, s := range streams {
		if s == nil {
			continue
		}
		// Both payload layouts (lossy "EPC1", lossless "EPL1") carry
		// uint16 width at offset 4 and height at offset 6.
		if len(s) < 8 {
			return 0, 0, 0, eperr.New(eperr.BadCodestream, "earthplus", "band %d payload of %d bytes has no header", b, len(s))
		}
		w, h := int(binary.LittleEndian.Uint16(s[4:])), int(binary.LittleEndian.Uint16(s[6:]))
		if !seen {
			width, height, seen = w, h, true
		} else if w != width || h != height {
			return 0, 0, 0, eperr.New(eperr.BadCodestream, "earthplus",
				"band %d claims %dx%d; earlier bands claim %dx%d", b, w, h, width, height)
		}
	}
	if !seen {
		return 0, 0, 0, eperr.New(eperr.BadCodestream, "earthplus", "frame carries no band payloads")
	}
	return width, height, len(streams), nil
}

// decodeBand dispatches on the per-band payload magic: lossless streams
// open with "EPL1", lossy with "EPC1".
func decodeBand(data []byte, maxLayers int) ([]float32, int, int, error) {
	if len(data) >= 4 && string(data[:4]) == "EPL1" {
		return codec.DecodePlaneLossless(data)
	}
	return codec.DecodePlane(data, maxLayers)
}
