package earthplus_test

import (
	"context"
	"math"
	"testing"

	"earthplus/pkg/earthplus"
)

// tiledFacadeImage builds a deterministic multi-band test image.
func tiledFacadeImage(w, h, bands int) *earthplus.Image {
	info := make([]earthplus.BandInfo, bands)
	img := earthplus.NewImage(w, h, info)
	for b := 0; b < bands; b++ {
		p := img.Plane(b)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p[y*w+x] = float32(0.5 + 0.3*math.Sin(float64(b)+float64(x)/9) +
					0.15*math.Cos(float64(y)/13))
			}
		}
	}
	return img
}

// TestTiledFacadeRoundTripAndRegion pins the public tiled profile: an
// EncodeOptions.Tiled frame carries the tiled container version, decodes
// through the same DecodeFrame as v1 frames, and DecodeFrameRegion
// returns exactly the crop of the full decode on every rectangle.
func TestTiledFacadeRoundTripAndRegion(t *testing.T) {
	const w, h, bands = 160, 96, 3
	img := tiledFacadeImage(w, h, bands)
	frame, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{BPP: 4, Tiled: true})
	if err != nil {
		t.Fatal(err)
	}
	if !earthplus.FrameTiled(frame) {
		t.Fatal("Tiled encode did not produce a tiled frame")
	}
	if got := frame[4]; int(got) != earthplus.ContainerVersionTiled {
		t.Fatalf("frame version %d, want %d", got, earthplus.ContainerVersionTiled)
	}
	if fw, fh, fb, err := earthplus.FrameDims(frame); err != nil || fw != w || fh != h || fb != bands {
		t.Fatalf("FrameDims = %d,%d,%d (%v)", fw, fh, fb, err)
	}
	full, err := earthplus.DecodeFrame(context.Background(), frame, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][4]int{{0, 0, 64, 64}, {70, 30, 64, 50}, {-8, -8, 20, 20}, {0, 0, w, h}} {
		reg, err := earthplus.DecodeFrameRegion(context.Background(), frame, nil, r[0], r[1], r[2], r[3])
		if err != nil {
			t.Fatalf("region %v: %v", r, err)
		}
		x0, y0 := max(r[0], 0), max(r[1], 0)
		x1, y1 := min(r[0]+r[2], w), min(r[1]+r[3], h)
		if reg.Width != x1-x0 || reg.Height != y1-y0 {
			t.Fatalf("region %v: got %dx%d", r, reg.Width, reg.Height)
		}
		for b := 0; b < bands; b++ {
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if got, want := reg.At(b, x-x0, y-y0), full.At(b, x, y); got != want {
						t.Fatalf("region %v band %d (%d,%d): %v != %v", r, b, x, y, got, want)
					}
				}
			}
		}
	}
	// Regions also work on monolithic frames (full decode plus crop).
	mono, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{BPP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if earthplus.FrameTiled(mono) {
		t.Fatal("default encode unexpectedly tiled")
	}
	monoFull, err := earthplus.DecodeFrame(context.Background(), mono, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := earthplus.DecodeFrameRegion(context.Background(), mono, nil, 16, 8, 40, 24)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bands; b++ {
		for y := 0; y < 24; y++ {
			for x := 0; x < 40; x++ {
				if reg.At(b, x, y) != monoFull.At(b, x+16, y+8) {
					t.Fatalf("monolithic region band %d (%d,%d) differs", b, x, y)
				}
			}
		}
	}
	// Degenerate and out-of-bounds rectangles are typed errors.
	if _, err := earthplus.DecodeFrameRegion(context.Background(), frame, nil, 0, 0, 0, 8); err == nil {
		t.Fatal("empty region accepted")
	}
	if _, err := earthplus.DecodeFrameRegion(context.Background(), frame, nil, w, h, 8, 8); err == nil {
		t.Fatal("out-of-bounds region accepted")
	}
	// Lossless overrides Tiled: the reversible profile is monolithic.
	ll, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{Lossless: true, Tiled: true})
	if err != nil {
		t.Fatal(err)
	}
	if earthplus.FrameTiled(ll) {
		t.Fatal("lossless encode produced a tiled frame")
	}
}
