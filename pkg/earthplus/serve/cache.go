package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// The result cache is content-addressed: a request digest over
// (endpoint, resolved options, body hash) keys the exact response bytes a
// successful request produced. Two tiers compose: a byte-bounded
// in-memory LRU front absorbs the steady state, and an optional on-disk
// store (Config.CacheDir) survives restarts — a warm fleet restart
// re-serves yesterday's popular tiles without re-running the codec.
// Only 200 responses are cached; errors always re-evaluate.

// cacheEntry is one cached success response: the content type, the
// response-specific headers (the X-Earthplus-* geometry of a decode) and
// the exact body bytes.
type cacheEntry struct {
	ContentType string            `json:"content_type"`
	Headers     map[string]string `json:"headers,omitempty"`
	Body        []byte            `json:"-"`
}

// requestDigest builds the content address of a request: the endpoint,
// every option that can change the response, and a SHA-256 of the body.
// Options are pre-resolved (the server's DefaultBPP is substituted before
// hashing), so the same logical request always lands on the same entry.
func requestDigest(endpoint string, opts []string, body []byte) string {
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	for _, o := range opts {
		h.Write([]byte(o))
		h.Write([]byte{0})
	}
	bh := sha256.Sum256(body)
	h.Write(bh[:])
	return hex.EncodeToString(h.Sum(nil))
}

// diskMeta is the store's bookkeeping for one on-disk entry.
type diskMeta struct {
	size  int64
	mtime time.Time
}

// resultCache is the two-tier response cache. All bookkeeping is under
// one mutex; entries are small (bounded by MaxBodyBytes) and disk files
// are written atomically (temp + rename), so a crash can at worst lose
// entries, never corrupt served bytes — a torn file fails its header
// check on read and is deleted as a miss.
type resultCache struct {
	mu sync.Mutex

	// Memory tier: LRU by digest, bounded by total body bytes.
	memBudget int64
	memUsed   int64
	mem       map[string]*list.Element
	order     *list.List // front = most recent; values are *memEntry

	// Disk tier: one file per digest under dir, bounded by total file
	// bytes, evicted oldest-mtime first. dir == "" disables the tier.
	dir        string
	diskBudget int64
	diskUsed   int64
	disk       map[string]diskMeta
}

type memEntry struct {
	digest string
	ent    *cacheEntry
}

// cacheFileMagic frames on-disk entries; a version bump invalidates old
// stores cleanly (unreadable entries are misses, then overwritten).
const cacheFileMagic = "EPRC"

// newResultCache builds the cache; dir == "" keeps it memory-only. The
// disk tier is scanned on startup so usage accounting and LRU order
// survive restarts (order is approximated by file mtime). An unusable
// dir degrades the cache to memory-only — Config.Validate is the loud
// path for refusing such a deployment up front.
func newResultCache(memBudget int64, dir string, diskBudget int64) *resultCache {
	c := &resultCache{
		memBudget:  memBudget,
		mem:        make(map[string]*list.Element),
		order:      list.New(),
		dir:        dir,
		diskBudget: diskBudget,
		disk:       make(map[string]diskMeta),
	}
	if dir == "" {
		return c
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		c.dir = ""
		return c
	}
	_ = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with eviction; skip
		}
		c.disk[filepath.Base(path)] = diskMeta{size: info.Size(), mtime: info.ModTime()}
		c.diskUsed += info.Size()
		return nil
	})
	return c
}

// entryPath shards entries over 256 subdirectories so a large store does
// not degenerate into one million-entry directory.
func (c *resultCache) entryPath(digest string) string {
	return filepath.Join(c.dir, digest[:2], digest)
}

// get returns the cached entry for digest and the tier that served it
// ("mem" or "disk"), or ok=false on a miss. A disk hit is promoted into
// the memory tier and its mtime refreshed so disk eviction stays LRU-ish.
func (c *resultCache) get(digest string) (ent *cacheEntry, tier string, ok bool) {
	if c == nil {
		return nil, "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, hit := c.mem[digest]; hit {
		c.order.MoveToFront(el)
		return el.Value.(*memEntry).ent, "mem", true
	}
	if c.dir == "" {
		return nil, "", false
	}
	if _, hit := c.disk[digest]; !hit {
		return nil, "", false
	}
	ent, err := readCacheFile(c.entryPath(digest))
	if err != nil {
		c.dropDiskLocked(digest)
		return nil, "", false
	}
	now := time.Now()
	_ = os.Chtimes(c.entryPath(digest), now, now)
	if m, hit := c.disk[digest]; hit {
		m.mtime = now
		c.disk[digest] = m
	}
	c.insertMemLocked(digest, ent)
	return ent, "disk", true
}

// put stores a success response in both tiers. Entries larger than a
// tier's whole budget are skipped for that tier rather than thrashing it.
func (c *resultCache) put(digest string, ent *cacheEntry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertMemLocked(digest, ent)
	if c.dir == "" {
		return
	}
	size, err := writeCacheFile(c.entryPath(digest), ent)
	if err != nil {
		return // disk full or unwritable: memory tier still serves
	}
	if old, hit := c.disk[digest]; hit {
		c.diskUsed -= old.size
	}
	c.disk[digest] = diskMeta{size: size, mtime: time.Now()}
	c.diskUsed += size
	c.evictDiskLocked()
}

// insertMemLocked installs ent at the front of the LRU and evicts from
// the back past the byte budget.
func (c *resultCache) insertMemLocked(digest string, ent *cacheEntry) {
	cost := int64(len(ent.Body))
	if cost > c.memBudget {
		return
	}
	if el, hit := c.mem[digest]; hit {
		c.memUsed -= int64(len(el.Value.(*memEntry).ent.Body))
		el.Value = &memEntry{digest: digest, ent: ent}
		c.order.MoveToFront(el)
		c.memUsed += cost
	} else {
		c.mem[digest] = c.order.PushFront(&memEntry{digest: digest, ent: ent})
		c.memUsed += cost
	}
	for c.memUsed > c.memBudget {
		back := c.order.Back()
		if back == nil {
			break
		}
		me := back.Value.(*memEntry)
		c.order.Remove(back)
		delete(c.mem, me.digest)
		c.memUsed -= int64(len(me.ent.Body))
	}
}

// dropDiskLocked forgets (and removes) one disk entry.
func (c *resultCache) dropDiskLocked(digest string) {
	if m, hit := c.disk[digest]; hit {
		c.diskUsed -= m.size
		delete(c.disk, digest)
	}
	_ = os.Remove(c.entryPath(digest))
}

// evictDiskLocked removes oldest-mtime files until the store fits its
// budget.
func (c *resultCache) evictDiskLocked() {
	if c.diskUsed <= c.diskBudget {
		return
	}
	type aged struct {
		digest string
		mtime  time.Time
	}
	victims := make([]aged, 0, len(c.disk))
	for d, m := range c.disk {
		victims = append(victims, aged{d, m.mtime})
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].mtime.Before(victims[j].mtime) })
	for _, v := range victims {
		if c.diskUsed <= c.diskBudget {
			return
		}
		c.dropDiskLocked(v.digest)
	}
}

// writeCacheFile persists one entry atomically: magic, uint32 JSON
// header length, JSON header, body — written to a temp file and renamed
// into place so readers never observe a torn entry.
func writeCacheFile(path string, ent *cacheEntry) (int64, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	hdr, err := json.Marshal(ent)
	if err != nil {
		return 0, err
	}
	buf := make([]byte, 0, len(cacheFileMagic)+4+len(hdr)+len(ent.Body))
	buf = append(buf, cacheFileMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hdr)))
	buf = append(buf, hdr...)
	buf = append(buf, ent.Body...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	return int64(len(buf)), nil
}

// readCacheFile loads one entry, failing on any framing mismatch.
func readCacheFile(path string) (*cacheEntry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(cacheFileMagic)+4 || string(data[:len(cacheFileMagic)]) != cacheFileMagic {
		return nil, fmt.Errorf("serve: cache entry %s: bad magic", path)
	}
	rest := data[len(cacheFileMagic):]
	hlen := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if hlen < 0 || hlen > len(rest) {
		return nil, fmt.Errorf("serve: cache entry %s: truncated header", path)
	}
	var ent cacheEntry
	if err := json.Unmarshal(rest[:hlen], &ent); err != nil {
		return nil, fmt.Errorf("serve: cache entry %s: %w", path, err)
	}
	ent.Body = rest[hlen:]
	return &ent, nil
}
