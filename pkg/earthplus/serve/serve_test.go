package serve_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"earthplus/pkg/earthplus"
	"earthplus/pkg/earthplus/serve"
)

// randomSamples builds a deterministic band-major uint16 payload.
func randomSamples(seed int64, w, h, bands int) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 0, w*h*bands*2)
	for i := 0; i < w*h*bands; i++ {
		out = binary.LittleEndian.AppendUint16(out, uint16(rng.Intn(65536)))
	}
	return out
}

func postBytes(t *testing.T, client *http.Client, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp, data
}

// errorCode extracts the taxonomy code from a JSON error body.
func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var payload struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &payload); err != nil {
		t.Fatalf("error body %q is not JSON: %v", body, err)
	}
	return payload.Error.Code
}

// TestServeSmokeConcurrentLosslessRoundTrip is the CI smoke contract: a
// lossless encode→decode round trip over HTTP must be byte-exact at 8+
// concurrent requests (run under -race in CI).
func TestServeSmokeConcurrentLosslessRoundTrip(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxConcurrent: 4}).Handler())
	defer ts.Close()

	const (
		workers = 8
		w, h    = 48, 32
		bands   = 3
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples := randomSamples(int64(1000+i), w, h, bands)
			encURL := fmt.Sprintf("%s/v1/encode?width=%d&height=%d&bands=%d&lossless=1", ts.URL, w, h, bands)
			resp, frame := postBytes(t, ts.Client(), encURL, samples)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("encode status %d: %s", resp.StatusCode, frame)
				return
			}
			resp, decoded := postBytes(t, ts.Client(), ts.URL+"/v1/decode", frame)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("decode status %d: %s", resp.StatusCode, decoded)
				return
			}
			if got := resp.Header.Get("X-Earthplus-Bands"); got != fmt.Sprint(bands) {
				errs[i] = fmt.Errorf("X-Earthplus-Bands = %q", got)
				return
			}
			if !bytes.Equal(decoded, samples) {
				errs[i] = fmt.Errorf("round trip is not byte-exact (%d vs %d bytes)", len(decoded), len(samples))
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func TestServeLossyRoundTripQuality(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	const w, h = 64, 64
	// Smooth samples compress well at the default 1 bpp.
	samples := make([]byte, 0, w*h*2)
	for i := 0; i < w*h; i++ {
		x, y := i%w, i/w
		samples = binary.LittleEndian.AppendUint16(samples, uint16(30000+20000*(x+y)/(w+h)))
	}
	resp, frame := postBytes(t, ts.Client(), fmt.Sprintf("%s/v1/encode?width=%d&height=%d&bpp=2.0", ts.URL, w, h), samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d: %s", resp.StatusCode, frame)
	}
	if len(frame) > earthplus.BudgetForBPP(2.0, w, h)+64 {
		t.Fatalf("frame %d bytes blows the 2 bpp budget", len(frame))
	}
	resp, decoded := postBytes(t, ts.Client(), ts.URL+"/v1/decode", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode status %d: %s", resp.StatusCode, decoded)
	}
	if len(decoded) != len(samples) {
		t.Fatalf("decoded %d bytes, want %d", len(decoded), len(samples))
	}
	var sumSq float64
	for i := 0; i < w*h; i++ {
		a := float64(binary.LittleEndian.Uint16(samples[2*i:]))
		b := float64(binary.LittleEndian.Uint16(decoded[2*i:]))
		sumSq += (a - b) * (a - b)
	}
	rmse := sumSq / float64(w*h)
	if rmse > 100*100 { // ~0.15% of full scale
		t.Fatalf("lossy round trip RMSE^2 = %.0f", rmse)
	}
}

// TestServeRequestDeadline pins the per-request deadline: a server whose
// RequestTimeout is too short to finish any codec work refuses with 503,
// a Retry-After hint and the canceled taxonomy code — the deadline is
// capacity protection, so clients should retry rather than treat the
// response as fatal. A negative RequestTimeout disables the deadline
// entirely and the same request succeeds.
func TestServeRequestDeadline(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{RequestTimeout: time.Nanosecond}).Handler())
	defer ts.Close()
	resp, body := postBytes(t, ts.Client(),
		fmt.Sprintf("%s/v1/encode?width=32&height=32", ts.URL), randomSamples(4, 32, 32, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline 503 carries no Retry-After")
	}
	if code := errorCode(t, body); code != string(earthplus.CodeCanceled) {
		t.Fatalf("code %q, want %q", code, earthplus.CodeCanceled)
	}

	off := httptest.NewServer(serve.New(serve.Config{RequestTimeout: -1}).Handler())
	defer off.Close()
	resp, body = postBytes(t, off.Client(),
		fmt.Sprintf("%s/v1/encode?width=32&height=32", off.URL), randomSamples(4, 32, 32, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("negative RequestTimeout: status %d, want 200 (body %q)", resp.StatusCode, body)
	}
}

func TestServeErrorCodes(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxBodyBytes: 1 << 20}).Handler())
	defer ts.Close()

	// Body size mismatch → 400 bad_image.
	resp, body := postBytes(t, ts.Client(), ts.URL+"/v1/encode?width=32&height=32", []byte("short"))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("size mismatch: status %d code %q", resp.StatusCode, errorCode(t, body))
	}

	// Missing geometry → 400 bad_image.
	resp, body = postBytes(t, ts.Client(), ts.URL+"/v1/encode", nil)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("missing width: status %d code %q", resp.StatusCode, errorCode(t, body))
	}

	// Unparsable bpp → 400.
	resp, body = postBytes(t, ts.Client(), ts.URL+"/v1/encode?width=32&height=32&bpp=zero", randomSamples(1, 32, 32, 1))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad bpp: status %d %s", resp.StatusCode, body)
	}

	// Budget below the floor → 400 budget_too_small.
	resp, body = postBytes(t, ts.Client(), ts.URL+"/v1/encode?width=32&height=32&bpp=0.01", randomSamples(2, 32, 32, 1))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "budget_too_small" {
		t.Fatalf("tiny budget: status %d code %q", resp.StatusCode, errorCode(t, body))
	}

	// Corrupt container → 400 bad_codestream.
	resp, body = postBytes(t, ts.Client(), ts.URL+"/v1/decode", []byte("this is not a frame"))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_codestream" {
		t.Fatalf("corrupt frame: status %d code %q", resp.StatusCode, errorCode(t, body))
	}

	// Truncated container (valid prefix) → 400 bad_codestream.
	good := earthplus.PackCodestream([][]byte{[]byte("EPC1-not-really-but-framed")})
	resp, body = postBytes(t, ts.Client(), ts.URL+"/v1/decode", good[:len(good)-2])
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_codestream" {
		t.Fatalf("truncated frame: status %d code %q", resp.StatusCode, errorCode(t, body))
	}

	// Absurd band count on encode → 400 before any codec work runs, so
	// the server can never emit a frame its own decoder would reject.
	resp, body = postBytes(t, ts.Client(),
		ts.URL+"/v1/encode?width=1&height=1&bands=5000", randomSamples(3, 1, 1, 5000))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("band bomb: status %d code %q", resp.StatusCode, errorCode(t, body))
	}
}

// TestServeDecodePixelCapPreDecode pins that MaxPixels bounds the decode
// work itself: a frame whose header claims a plane over the cap is
// refused from the header alone, before any payload decoding.
func TestServeDecodePixelCapPreDecode(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxPixels: 16 * 16}).Handler())
	defer ts.Close()
	frame := encodeLosslessFrame(t, 32, 32, 1)
	resp, body := postBytes(t, ts.Client(), ts.URL+"/v1/decode", frame)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("oversize decode: status %d code %q", resp.StatusCode, errorCode(t, body))
	}
	// Under the cap it decodes fine.
	small := encodeLosslessFrame(t, 16, 16, 1)
	resp, _ = postBytes(t, ts.Client(), ts.URL+"/v1/decode", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-cap decode: status %d", resp.StatusCode)
	}
}

// TestServeEncodeGeometryOverflow pins that hostile width/height query
// ints whose product overflows int cannot slip past the pixel cap and
// reach a negative-length raster allocation.
func TestServeEncodeGeometryOverflow(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	url := fmt.Sprintf("%s/v1/encode?width=%d&height=%d", ts.URL, int64(1)<<33, int64(1)<<30)
	resp, body := postBytes(t, ts.Client(), url, nil)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("overflowing geometry: status %d code %q", resp.StatusCode, errorCode(t, body))
	}
}

// TestServeDecodeSampleBombPreDecode pins that the decode pre-flight
// bounds width*height*bands jointly: a ~100-byte frame whose tiny band
// payloads each claim a large-but-individually-legal geometry must be
// refused from the headers alone, before DecodeFrame allocates one plane
// per band.
func TestServeDecodeSampleBombPreDecode(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxBodyBytes: 1 << 22}).Handler())
	defer ts.Close()
	// 8 bands claiming 1024x1024 each: the pixels (2^20) and the band
	// count both pass their individual caps, but the 2^23 total samples
	// exceed the 2^21 the 4 MiB body cap implies.
	payload := []byte("EPC1")
	payload = binary.LittleEndian.AppendUint16(payload, 1024)
	payload = binary.LittleEndian.AppendUint16(payload, 1024)
	bands := make([][]byte, 8)
	for i := range bands {
		bands[i] = payload
	}
	resp, body := postBytes(t, ts.Client(), ts.URL+"/v1/decode", earthplus.PackCodestream(bands))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_image" {
		t.Fatalf("sample bomb: status %d code %q", resp.StatusCode, errorCode(t, body))
	}
}

// TestServeDecodeMismatchedBandGeometryPreDecode pins that an innocuous
// band 0 cannot smuggle oversized later bands past the pre-flight: the
// geometry checks cover every band's claimed header, so the frame is
// refused before any band decodes.
func TestServeDecodeMismatchedBandGeometryPreDecode(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxPixels: 64}).Handler())
	defer ts.Close()
	bands := [][]byte{
		{'E', 'P', 'C', '1', 8, 0, 8, 0}, // 8x8, within the cap
		{'E', 'P', 'C', '1', 0, 1, 0, 1}, // claims 256x256
	}
	resp, body := postBytes(t, ts.Client(), ts.URL+"/v1/decode", earthplus.PackCodestream(bands))
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_codestream" {
		t.Fatalf("mismatched band geometry: status %d code %q", resp.StatusCode, errorCode(t, body))
	}
}

// encodeLosslessFrame builds one container frame through a throwaway
// server with default limits.
func encodeLosslessFrame(t *testing.T, w, h, bands int) []byte {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	url := fmt.Sprintf("%s/v1/encode?width=%d&height=%d&bands=%d&lossless=1", ts.URL, w, h, bands)
	resp, frame := postBytes(t, ts.Client(), url, randomSamples(9, w, h, bands))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d: %s", resp.StatusCode, frame)
	}
	return frame
}

func TestServeInfo(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{MaxConcurrent: 3}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info struct {
		Version   string   `json:"version"`
		API       string   `json:"api"`
		Systems   []string `json:"systems"`
		Container struct {
			Magic   string `json:"magic"`
			Version int    `json:"version"`
		} `json:"container"`
		Limits struct {
			MaxConcurrent int `json:"max_concurrent"`
		} `json:"limits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.API != earthplus.APIVersion || info.Version != earthplus.Version {
		t.Fatalf("info versions = %+v", info)
	}
	if info.Container.Magic != earthplus.ContainerMagic {
		t.Fatalf("container magic %q", info.Container.Magic)
	}
	if info.Limits.MaxConcurrent != 3 {
		t.Fatalf("max_concurrent = %d", info.Limits.MaxConcurrent)
	}
	found := false
	for _, s := range info.Systems {
		if s == earthplus.SystemEarthPlus {
			found = true
		}
	}
	if !found {
		t.Fatalf("systems %v missing %q", info.Systems, earthplus.SystemEarthPlus)
	}
}

func TestServeMethodRouting(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/encode")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/encode status %d", resp.StatusCode)
	}
}
