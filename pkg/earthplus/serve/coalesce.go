package serve

import (
	"context"
	"sync"

	"earthplus/pkg/earthplus"
)

// Request coalescing (singleflight): N concurrent requests with the same
// content digest run ONE codec pass; the leader executes and every
// follower receives the same *cacheEntry. Followers block on the
// leader's completion channel without touching the worker semaphore —
// only the leader acquires a slot — so a popular frame arriving 100 ways
// at once costs one slot and one decode, not a hundred. The leader runs
// on a context detached from its own client (see Server.workContext): a
// leader whose client hangs up keeps computing for its followers.

// flightCall is one in-progress computation.
type flightCall struct {
	done chan struct{}
	ent  *cacheEntry
	err  error
}

// flightGroup deduplicates in-flight work by digest.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do runs fn once per concurrently-requested digest. shared reports that
// this caller was a follower served by another request's pass. A
// follower whose own ctx ends first gives up with a canceled error while
// the leader's work continues for the rest.
func (g *flightGroup) do(ctx context.Context, digest string, fn func() (*cacheEntry, error)) (ent *cacheEntry, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[digest]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.ent, c.err, true
		case <-ctx.Done():
			return nil, &earthplus.Error{Code: earthplus.CodeCanceled, Op: "serve", Err: ctx.Err()}, true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[digest] = c
	g.mu.Unlock()

	c.ent, c.err = fn()
	g.mu.Lock()
	delete(g.m, digest)
	g.mu.Unlock()
	close(c.done)
	return c.ent, c.err, false
}
