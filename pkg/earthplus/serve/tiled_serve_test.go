package serve_test

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"earthplus/pkg/earthplus"
	"earthplus/pkg/earthplus/serve"
)

// cropSamples crops a band-major uint16 sample payload to a rectangle.
func cropSamples(full []byte, w, h, bands, x, y, cw, ch int) []byte {
	out := make([]byte, 0, cw*ch*bands*2)
	for b := 0; b < bands; b++ {
		base := b * w * h
		for dy := 0; dy < ch; dy++ {
			row := (base + (y+dy)*w + x) * 2
			out = append(out, full[row:row+cw*2]...)
		}
	}
	return out
}

// TestServeTiledRegionDecode drives the tiled profile end to end over
// HTTP: tiled=1 on /v1/encode produces a v2 tiled frame, and x,y,w,h on
// /v1/decode returns exactly the crop of the full decode — the region is
// answered from the covering tiles, so it must not differ from decoding
// everything and cropping.
func TestServeTiledRegionDecode(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	const w, h, bands = 192, 128, 2 // 3x2 codec tiles per band

	samples := randomSamples(7, w, h, bands)
	encURL := fmt.Sprintf("%s/v1/encode?width=%d&height=%d&bands=%d&tiled=1&bpp=4", ts.URL, w, h, bands)
	resp, frame := postBytes(t, ts.Client(), encURL, samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tiled encode status %d: %s", resp.StatusCode, frame)
	}
	if !earthplus.FrameTiled(frame) {
		t.Fatal("tiled=1 encode did not produce a tiled frame")
	}

	resp, full := postBytes(t, ts.Client(), ts.URL+"/v1/decode", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full decode status %d: %s", resp.StatusCode, full)
	}
	for _, r := range [][4]int{{0, 0, 64, 64}, {70, 30, 64, 50}, {100, 60, 92, 68}, {-10, -10, 30, 30}, {0, 0, w, h}} {
		url := fmt.Sprintf("%s/v1/decode?x=%d&y=%d&w=%d&h=%d", ts.URL, r[0], r[1], r[2], r[3])
		resp, region := postBytes(t, ts.Client(), url, frame)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("region %v decode status %d: %s", r, resp.StatusCode, region)
		}
		x0, y0 := max(r[0], 0), max(r[1], 0)
		cw, ch := min(r[0]+r[2], w)-x0, min(r[1]+r[3], h)-y0
		if got := resp.Header.Get("X-Earthplus-Width"); got != fmt.Sprint(cw) {
			t.Fatalf("region %v: X-Earthplus-Width = %q, want %d", r, got, cw)
		}
		if got := resp.Header.Get("X-Earthplus-Height"); got != fmt.Sprint(ch) {
			t.Fatalf("region %v: X-Earthplus-Height = %q, want %d", r, got, ch)
		}
		if want := cropSamples(full, w, h, bands, x0, y0, cw, ch); !bytes.Equal(region, want) {
			t.Fatalf("region %v: samples differ from the cropped full decode", r)
		}
	}
}

// TestServeRegionDecodeMonolithicFallback pins that regions work on the
// v1 monolithic profile too (full decode plus crop).
func TestServeRegionDecodeMonolithicFallback(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	const w, h = 96, 64
	samples := randomSamples(11, w, h, 1)
	resp, frame := postBytes(t, ts.Client(), fmt.Sprintf("%s/v1/encode?width=%d&height=%d&bpp=4", ts.URL, w, h), samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d: %s", resp.StatusCode, frame)
	}
	if earthplus.FrameTiled(frame) {
		t.Fatal("default encode unexpectedly produced a tiled frame")
	}
	resp, full := postBytes(t, ts.Client(), ts.URL+"/v1/decode", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full decode status %d: %s", resp.StatusCode, full)
	}
	resp, region := postBytes(t, ts.Client(), ts.URL+"/v1/decode?x=16&y=8&w=40&h=24", frame)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("region decode status %d: %s", resp.StatusCode, region)
	}
	if want := cropSamples(full, w, h, 1, 16, 8, 40, 24); !bytes.Equal(region, want) {
		t.Fatal("monolithic region decode differs from the cropped full decode")
	}
}

// TestServeRegionDecodeErrors pins the region parameter validation.
func TestServeRegionDecodeErrors(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	const w, h = 64, 64
	samples := randomSamples(3, w, h, 1)
	resp, frame := postBytes(t, ts.Client(), fmt.Sprintf("%s/v1/encode?width=%d&height=%d&tiled=1", ts.URL, w, h), samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("encode status %d: %s", resp.StatusCode, frame)
	}
	cases := []struct {
		name, query, code string
	}{
		{"missing w/h", "?x=1&y=1", "bad_request"},
		{"non-positive h", "?w=10&h=0", "bad_request"},
		{"layers with region", "?w=10&h=10&layers=2", "bad_request"},
		{"non-numeric", "?w=ten&h=10", "bad_request"},
		{"outside plane", fmt.Sprintf("?x=%d&y=%d&w=8&h=8", w, h), "bad_image"},
	}
	for _, tc := range cases {
		resp, body := postBytes(t, ts.Client(), ts.URL+"/v1/decode"+tc.query, frame)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
		}
		if code := errorCode(t, body); code != tc.code {
			t.Fatalf("%s: error code %q, want %q", tc.name, code, tc.code)
		}
	}
	// tiled and lossless refuse to combine on the encode side.
	resp, body := postBytes(t, ts.Client(),
		fmt.Sprintf("%s/v1/encode?width=%d&height=%d&tiled=1&lossless=1", ts.URL, w, h), samples)
	if resp.StatusCode != http.StatusBadRequest || errorCode(t, body) != "bad_request" {
		t.Fatalf("tiled+lossless: status %d body %s", resp.StatusCode, body)
	}
}
