package serve

import (
	"bytes"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

func TestServeConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	good := Config{CacheDir: t.TempDir(), RatePerSec: 2.5, RateBurst: 4}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{RatePerSec: -1},
		{RatePerSec: math.NaN()},
		{RateBurst: -1},
		{CacheDiskBytes: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	// A CacheDir that cannot exist (nested under a regular file) must be
	// refused up front, not silently degraded.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	under := Config{CacheDir: filepath.Join(f, "sub")}
	if under.Validate() == nil {
		t.Error("uncreatable cache dir accepted")
	}
}

func TestServeLimiterDefaults(t *testing.T) {
	if newLimiter(0, 5) != nil {
		t.Fatal("rate 0 must disable limiting")
	}
	var nilL *limiter
	if ok, _ := nilL.allow("x", time.Now()); !ok {
		t.Fatal("nil limiter must allow everything")
	}
	if l := newLimiter(0.25, 0); l.burst != 1 {
		t.Fatalf("fractional-rate default burst = %v, want 1", l.burst)
	}
	if l := newLimiter(8, 0); l.burst != 8 {
		t.Fatalf("default burst = %v, want one second's refill (8)", l.burst)
	}
	if l := newLimiter(1, 3); l.burst != 3 {
		t.Fatalf("explicit burst = %v, want 3", l.burst)
	}
}

func TestServeLimiterEscalationAndRefill(t *testing.T) {
	l := newLimiter(1, 1)
	now := time.Unix(1000, 0)
	if ok, _ := l.allow("a", now); !ok {
		t.Fatal("first request refused")
	}
	for want := 1; want <= 3; want++ {
		if ok, ra := l.allow("a", now); ok || ra != want {
			t.Fatalf("refusal %d: ok=%v Retry-After=%d, want refused with %d", want, ok, ra, want)
		}
	}
	// After a refill interval the bucket grants again and the dry streak
	// resets — the next refusal starts the escalation over at 1.
	now = now.Add(4 * time.Second)
	if ok, _ := l.allow("a", now); !ok {
		t.Fatal("bucket did not refill")
	}
	if ok, ra := l.allow("a", now); ok || ra != 1 {
		t.Fatalf("dry streak did not reset: ok=%v Retry-After=%d", ok, ra)
	}
}

func TestServeLimiterSweep(t *testing.T) {
	l := newLimiter(1, 1)
	now := time.Unix(2000, 0)
	for i := 0; i < limiterSweepThreshold; i++ {
		l.allow("client-"+strconv.Itoa(i), now)
	}
	if len(l.clients) != limiterSweepThreshold {
		t.Fatalf("tracked clients = %d, want %d", len(l.clients), limiterSweepThreshold)
	}
	// Two seconds later every bucket has fully refilled, so the next new
	// client's insert sweeps the whole table down to itself.
	now = now.Add(2 * time.Second)
	l.allow("fresh", now)
	if len(l.clients) != 1 {
		t.Fatalf("sweep left %d clients, want 1", len(l.clients))
	}
}

func TestServeClientIDResolution(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if got := clientID(r, ""); got != "10.1.2.3" {
		t.Fatalf("remote-addr identity = %q, want port stripped", got)
	}
	if got := clientID(r, "X-Client-Id"); got != "10.1.2.3" {
		t.Fatalf("absent header must fall back to IP, got %q", got)
	}
	r.Header.Set("X-Client-Id", "tenant-7")
	if got := clientID(r, "X-Client-Id"); got != "tenant-7" {
		t.Fatalf("header identity = %q, want tenant-7", got)
	}
	r.RemoteAddr = "pipe"
	if got := clientID(r, ""); got != "pipe" {
		t.Fatalf("unsplittable addr = %q, want passthrough", got)
	}
}

func TestServeMemLRUEviction(t *testing.T) {
	body := func(n int) []byte { return bytes.Repeat([]byte{0xAB}, n) }
	c := newResultCache(100, "", 0)
	c.put("aa11", &cacheEntry{Body: body(60)})
	c.put("bb22", &cacheEntry{Body: body(60)})
	if _, _, ok := c.get("aa11"); ok {
		t.Fatal("oldest entry survived past the byte budget")
	}
	if _, _, ok := c.get("bb22"); !ok {
		t.Fatal("newest entry missing")
	}
	// An entry bigger than the whole budget skips the tier instead of
	// flushing it.
	c.put("cc33", &cacheEntry{Body: body(150)})
	if _, _, ok := c.get("cc33"); ok {
		t.Fatal("oversized entry cached")
	}
	if _, _, ok := c.get("bb22"); !ok {
		t.Fatal("oversized insert flushed the tier")
	}
	// Replacing under the same digest adjusts accounting in place.
	c.put("bb22", &cacheEntry{Body: body(30)})
	c.put("dd44", &cacheEntry{Body: body(60)})
	if _, _, ok := c.get("bb22"); !ok {
		t.Fatal("replaced entry missing")
	}
	if _, _, ok := c.get("dd44"); !ok {
		t.Fatal("entry evicted despite fitting after replacement shrank usage")
	}
	if c.memUsed != 90 {
		t.Fatalf("memUsed = %d, want 90", c.memUsed)
	}
}

func TestServeDiskEvictionAndCorruption(t *testing.T) {
	dir := t.TempDir()
	// Memory tier disabled so every get exercises the disk path.
	c := newResultCache(0, dir, 250)
	body := bytes.Repeat([]byte{0xCD}, 64)
	c.put("aaaa", &cacheEntry{Body: body})
	c.put("bbbb", &cacheEntry{Body: body})
	c.put("cccc", &cacheEntry{Body: body})
	if c.diskUsed > 250 {
		t.Fatalf("diskUsed = %d over budget 250 after eviction", c.diskUsed)
	}
	if _, _, ok := c.get("aaaa"); ok {
		t.Fatal("oldest disk entry survived past the byte budget")
	}
	if _, err := os.Stat(c.entryPath("aaaa")); !os.IsNotExist(err) {
		t.Fatalf("evicted entry's file still on disk: %v", err)
	}
	if ent, tier, ok := c.get("bbbb"); !ok || tier != "disk" || !bytes.Equal(ent.Body, body) {
		t.Fatalf("disk entry bbbb: ok=%v tier=%q", ok, tier)
	}
	// A torn or corrupt file fails its frame check, is dropped, and reads
	// as a miss — never served.
	if err := os.WriteFile(c.entryPath("cccc"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.get("cccc"); ok {
		t.Fatal("corrupt entry served")
	}
	if _, _, ok := c.get("cccc"); ok {
		t.Fatal("corrupt entry not forgotten")
	}
	if _, err := os.Stat(c.entryPath("cccc")); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry's file not removed: %v", err)
	}
}
