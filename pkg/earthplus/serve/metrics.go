package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Operational metrics, exposed at GET /metrics in the Prometheus text
// exposition format. Hand-rolled on purpose: the counters below are the
// whole surface, and the repo takes no dependencies. Metric names:
//
//	earthplus_http_requests_total{endpoint,status}  counter
//	earthplus_http_errors_total{code}               counter
//	earthplus_cache_hits_total{tier="mem"|"disk"}   counter
//	earthplus_cache_misses_total                    counter
//	earthplus_coalesced_requests_total              counter
//	earthplus_rate_limited_total                    counter
//	earthplus_in_flight_requests                    gauge
//	earthplus_request_duration_seconds              histogram
//
// The histogram observes every /v1 request's wall time, cache hits
// included — it is the time-to-usable-result distribution, the metric
// the serving tier optimises.

// latencyBuckets are the histogram's upper bounds, in seconds.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// serverMetrics is the registry. One mutex guards everything: every
// update is a few map/slice writes, far off the codec's critical path.
type serverMetrics struct {
	mu           sync.Mutex
	requests     map[string]int64 // "endpoint\xffstatus" -> count
	errors       map[string]int64 // taxonomy code -> count
	cacheHitMem  int64
	cacheHitDisk int64
	cacheMiss    int64
	coalesced    int64
	rateLimited  int64
	inFlight     int64
	latCounts    []int64 // one per latencyBuckets entry, non-cumulative
	latOverflow  int64   // observations past the last bucket
	latSum       float64
	latCount     int64
}

func newServerMetrics() *serverMetrics {
	return &serverMetrics{
		requests:  make(map[string]int64),
		errors:    make(map[string]int64),
		latCounts: make([]int64, len(latencyBuckets)),
	}
}

func (m *serverMetrics) request(endpoint string, status int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s\xff%d", endpoint, status)]++
	m.latSum += sec
	m.latCount++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.latCounts[i]++
			return
		}
	}
	m.latOverflow++
}

func (m *serverMetrics) error(code string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.errors[code]++
}

func (m *serverMetrics) cacheHit(tier string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if tier == "disk" {
		m.cacheHitDisk++
	} else {
		m.cacheHitMem++
	}
}

func (m *serverMetrics) cacheMissed()    { m.mu.Lock(); m.cacheMiss++; m.mu.Unlock() }
func (m *serverMetrics) coalescedServe() { m.mu.Lock(); m.coalesced++; m.mu.Unlock() }
func (m *serverMetrics) rateLimitedHit() { m.mu.Lock(); m.rateLimited++; m.mu.Unlock() }
func (m *serverMetrics) enterFlight()    { m.mu.Lock(); m.inFlight++; m.mu.Unlock() }
func (m *serverMetrics) leaveFlight()    { m.mu.Lock(); m.inFlight--; m.mu.Unlock() }

// render writes the Prometheus text exposition. Label sets print in
// sorted order so scrapes (and tests) see deterministic output.
func (m *serverMetrics) render(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprint(w, "# HELP earthplus_http_requests_total Requests served, by endpoint and HTTP status.\n")
	fmt.Fprint(w, "# TYPE earthplus_http_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		var endpoint, status string
		for i := 0; i < len(k); i++ {
			if k[i] == '\xff' {
				endpoint, status = k[:i], k[i+1:]
				break
			}
		}
		fmt.Fprintf(w, "earthplus_http_requests_total{endpoint=%q,status=%q} %d\n", endpoint, status, m.requests[k])
	}

	fmt.Fprint(w, "# HELP earthplus_http_errors_total Error responses, by taxonomy code.\n")
	fmt.Fprint(w, "# TYPE earthplus_http_errors_total counter\n")
	codes := make([]string, 0, len(m.errors))
	for c := range m.errors {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "earthplus_http_errors_total{code=%q} %d\n", c, m.errors[c])
	}

	fmt.Fprint(w, "# HELP earthplus_cache_hits_total Result-cache hits, by tier.\n")
	fmt.Fprint(w, "# TYPE earthplus_cache_hits_total counter\n")
	fmt.Fprintf(w, "earthplus_cache_hits_total{tier=\"mem\"} %d\n", m.cacheHitMem)
	fmt.Fprintf(w, "earthplus_cache_hits_total{tier=\"disk\"} %d\n", m.cacheHitDisk)
	fmt.Fprint(w, "# HELP earthplus_cache_misses_total Result-cache misses.\n")
	fmt.Fprint(w, "# TYPE earthplus_cache_misses_total counter\n")
	fmt.Fprintf(w, "earthplus_cache_misses_total %d\n", m.cacheMiss)
	fmt.Fprint(w, "# HELP earthplus_coalesced_requests_total Requests served by another identical request's codec pass.\n")
	fmt.Fprint(w, "# TYPE earthplus_coalesced_requests_total counter\n")
	fmt.Fprintf(w, "earthplus_coalesced_requests_total %d\n", m.coalesced)
	fmt.Fprint(w, "# HELP earthplus_rate_limited_total Requests refused with 429 by per-client rate limiting.\n")
	fmt.Fprint(w, "# TYPE earthplus_rate_limited_total counter\n")
	fmt.Fprintf(w, "earthplus_rate_limited_total %d\n", m.rateLimited)
	fmt.Fprint(w, "# HELP earthplus_in_flight_requests Codec requests currently being handled.\n")
	fmt.Fprint(w, "# TYPE earthplus_in_flight_requests gauge\n")
	fmt.Fprintf(w, "earthplus_in_flight_requests %d\n", m.inFlight)

	fmt.Fprint(w, "# HELP earthplus_request_duration_seconds Request wall time, cache hits included.\n")
	fmt.Fprint(w, "# TYPE earthplus_request_duration_seconds histogram\n")
	var cum int64
	for i, ub := range latencyBuckets {
		cum += m.latCounts[i]
		fmt.Fprintf(w, "earthplus_request_duration_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	fmt.Fprintf(w, "earthplus_request_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum+m.latOverflow)
	fmt.Fprintf(w, "earthplus_request_duration_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "earthplus_request_duration_seconds_count %d\n", m.latCount)
}
