package serve_test

// Production-tier contracts: the JSON error taxonomy on unrouted paths,
// the bad_request/bad_image split, per-client rate limiting with its
// escalating Retry-After, request coalescing, the persistent result
// cache across a server restart, and the /metrics exposition. All run
// under -race in CI.

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"earthplus/pkg/earthplus"
	"earthplus/pkg/earthplus/serve"
)

// scrapeMetrics fetches a test server's /metrics text.
func scrapeMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return readAll(t, resp)
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// metricValue extracts one sample's value from the exposition text, -1
// when the series is absent.
func metricValue(text, series string) int64 {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			if v, err := strconv.ParseInt(rest, 10, 64); err == nil {
				return v
			}
		}
	}
	return -1
}

// TestServeUnroutedJSONTaxonomy pins the HTTP error contract on paths the
// mux does not route: unknown paths are 404 not_found and wrong methods
// 405 method_not_allowed, both as taxonomy JSON (never Go's plain-text
// defaults), with the Allow header preserved on 405 so clients still
// learn the supported methods.
func TestServeUnroutedJSONTaxonomy(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/nope status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("404 Content-Type %q, want application/json", ct)
	}
	if code := errorCode(t, []byte(body)); code != string(earthplus.CodeNotFound) {
		t.Fatalf("404 code %q, want %q", code, earthplus.CodeNotFound)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/encode")
	if err != nil {
		t.Fatal(err)
	}
	body = readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/encode status %d, want 405", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("405 Content-Type %q, want application/json", ct)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "POST") {
		t.Fatalf("405 Allow %q does not offer POST", allow)
	}
	if code := errorCode(t, []byte(body)); code != string(earthplus.CodeMethodNotAllowed) {
		t.Fatalf("405 code %q, want %q", code, earthplus.CodeMethodNotAllowed)
	}
}

// TestServeBadRequestVsBadImage pins the code split on the 400 surface:
// malformed requests (unparsable parameters) are bad_request, while
// well-formed requests with invalid image geometry stay bad_image.
func TestServeBadRequestVsBadImage(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()

	for _, tc := range []struct {
		name, url string
		body      []byte
		code      earthplus.ErrorCode
	}{
		{"non-integer width", "/v1/encode?width=abc&height=32", nil, earthplus.CodeBadRequest},
		{"non-numeric bpp", "/v1/encode?width=32&height=32&bpp=zero", randomSamples(1, 32, 32, 1), earthplus.CodeBadRequest},
		{"non-integer layers", "/v1/decode?layers=many", encodeLosslessFrame(t, 8, 8, 1), earthplus.CodeBadRequest},
		{"missing geometry", "/v1/encode", nil, earthplus.CodeBadImage},
		{"body/geometry mismatch", "/v1/encode?width=32&height=32", []byte("short"), earthplus.CodeBadImage},
	} {
		resp, body := postBytes(t, ts.Client(), ts.URL+tc.url, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
		if code := errorCode(t, body); code != string(tc.code) {
			t.Fatalf("%s: code %q, want %q", tc.name, code, tc.code)
		}
	}
}

// TestServeRateLimitEscalatingRetryAfter pins the 429 contract: a dry
// bucket refuses with rate_limited and a Retry-After derived from its own
// refill, escalating on consecutive refusals (1s, 2s, 3s at 1 req/s) so
// a hammering client's retries spread out instead of stampeding. Another
// client's bucket is untouched.
func TestServeRateLimitEscalatingRetryAfter(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{
		RatePerSec:   1,
		RateBurst:    1,
		ClientHeader: "X-Client-Id",
	}).Handler())
	defer ts.Close()

	post := func(client string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/encode?width=32&height=32&lossless=1",
			bytes.NewReader(randomSamples(7, 32, 32, 1)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Client-Id", client)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		return resp, []byte(body)
	}

	if resp, body := post("alice"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d (%s)", resp.StatusCode, body)
	}
	var hints []int
	for i := 0; i < 3; i++ {
		resp, body := post("alice")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("refusal %d: status %d, want 429 (%s)", i, resp.StatusCode, body)
		}
		if code := errorCode(t, body); code != string(earthplus.CodeRateLimited) {
			t.Fatalf("refusal %d: code %q, want %q", i, code, earthplus.CodeRateLimited)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("refusal %d: Retry-After %q is not an integer", i, resp.Header.Get("Retry-After"))
		}
		hints = append(hints, ra)
	}
	if hints[0] < 1 {
		t.Fatalf("first refusal hint %d, want >= 1", hints[0])
	}
	for i := 1; i < len(hints); i++ {
		if hints[i] <= hints[i-1] {
			t.Fatalf("Retry-After hints %v do not escalate", hints)
		}
	}
	// Per-client isolation: a different client still has its burst.
	if resp, body := post("bob"); resp.StatusCode != http.StatusOK {
		t.Fatalf("other client: status %d (%s)", resp.StatusCode, body)
	}
	if n := metricValue(scrapeMetrics(t, ts), "earthplus_rate_limited_total"); n != 3 {
		t.Fatalf("earthplus_rate_limited_total = %d, want 3", n)
	}
}

// TestServeCoalescingByteIdenticalFanOut pins singleflight: with one
// worker slot held by a slow plug request, a fan-out of identical
// requests piles onto one flight leader; every response is 200 with
// byte-identical frames and the coalesced counter records the followers.
// Cache disabled, so deduplication is the only thing that can coalesce.
func TestServeCoalescingByteIdenticalFanOut(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{
		MaxConcurrent: 1,
		CacheMemBytes: -1,
		QueueWait:     30 * time.Second,
	}).Handler())
	defer ts.Close()

	// The plug: a distinct request, big enough to hold the single worker
	// slot while the identical fan-out queues up behind it. Wait for the
	// in-flight gauge rather than sleeping: on a loaded single-core host
	// a fixed sleep can outlive a small plug encode entirely, leaving the
	// fan-out uncontended with nothing to coalesce.
	var plugWG sync.WaitGroup
	plugWG.Add(1)
	go func() {
		defer plugWG.Done()
		resp, body := postBytes(t, ts.Client(),
			ts.URL+"/v1/encode?width=1024&height=1024&bands=3&lossless=1", randomSamples(11, 1024, 1024, 3))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("plug: status %d (%s)", resp.StatusCode, body)
		}
	}()
	for deadline := time.Now().Add(10 * time.Second); ; {
		if metricValue(scrapeMetrics(t, ts), "earthplus_in_flight_requests") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plug request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	const fanOut = 8
	samples := randomSamples(12, 64, 64, 2)
	frames := make([][]byte, fanOut)
	var wg sync.WaitGroup
	for i := 0; i < fanOut; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postBytes(t, ts.Client(),
				ts.URL+"/v1/encode?width=64&height=64&bands=2&lossless=1", samples)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("fan-out %d: status %d (%s)", i, resp.StatusCode, body)
				return
			}
			frames[i] = body
		}(i)
	}
	wg.Wait()
	plugWG.Wait()
	for i := 1; i < fanOut; i++ {
		if !bytes.Equal(frames[i], frames[0]) {
			t.Fatalf("fan-out %d: frame differs from fan-out 0 (%d vs %d bytes)", i, len(frames[i]), len(frames[0]))
		}
	}
	if n := metricValue(scrapeMetrics(t, ts), "earthplus_coalesced_requests_total"); n < 1 {
		t.Fatalf("earthplus_coalesced_requests_total = %d, want >= 1", n)
	}
}

// TestServeCachePersistenceAcrossRestart pins the persistent tier: a
// response cached by one server is served byte-identically by a NEW
// server on the same cache directory — a restart keeps the store — with
// the warm hit visible as a disk-tier cache hit in /metrics.
func TestServeCachePersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	samples := randomSamples(21, 48, 48, 3)
	const url = "/v1/encode?width=48&height=48&bands=3&lossless=1"

	first := httptest.NewServer(serve.New(serve.Config{CacheDir: dir}).Handler())
	resp, frame := postBytes(t, first.Client(), first.URL+url, samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold encode: status %d (%s)", resp.StatusCode, frame)
	}
	resp, repeat := postBytes(t, first.Client(), first.URL+url, samples)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(repeat, frame) {
		t.Fatalf("same-server repeat: status %d, identical=%v", resp.StatusCode, bytes.Equal(repeat, frame))
	}
	if n := metricValue(scrapeMetrics(t, first), `earthplus_cache_hits_total{tier="mem"}`); n != 1 {
		t.Fatalf("mem hits on first server = %d, want 1", n)
	}
	first.Close()

	// The restart: a fresh server, empty memory, same directory.
	second := httptest.NewServer(serve.New(serve.Config{CacheDir: dir}).Handler())
	defer second.Close()
	resp, warm := postBytes(t, second.Client(), second.URL+url, samples)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart: status %d (%s)", resp.StatusCode, warm)
	}
	if !bytes.Equal(warm, frame) {
		t.Fatalf("post-restart response differs (%d vs %d bytes)", len(warm), len(frame))
	}
	text := scrapeMetrics(t, second)
	if n := metricValue(text, `earthplus_cache_hits_total{tier="disk"}`); n != 1 {
		t.Fatalf("disk hits after restart = %d, want 1", n)
	}
	// The disk hit was promoted: a further repeat hits memory.
	resp, again := postBytes(t, second.Client(), second.URL+url, samples)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(again, frame) {
		t.Fatalf("promoted repeat: status %d, identical=%v", resp.StatusCode, bytes.Equal(again, frame))
	}
	if n := metricValue(scrapeMetrics(t, second), `earthplus_cache_hits_total{tier="mem"}`); n != 1 {
		t.Fatalf("mem hits after promotion = %d, want 1", n)
	}
}

// TestServeMetricsExposition pins the /metrics surface: request counters
// by endpoint and status, taxonomy error counters, cache counters and the
// latency histogram, in the Prometheus text format.
func TestServeMetricsExposition(t *testing.T) {
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	defer ts.Close()
	samples := randomSamples(31, 16, 16, 1)
	const url = "/v1/encode?width=16&height=16&lossless=1"
	for i := 0; i < 2; i++ {
		if resp, body := postBytes(t, ts.Client(), ts.URL+url, samples); resp.StatusCode != http.StatusOK {
			t.Fatalf("encode %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if resp, err := ts.Client().Get(ts.URL + "/no/such/path"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	text := scrapeMetrics(t, ts)
	for series, want := range map[string]int64{
		`earthplus_http_requests_total{endpoint="encode",status="200"}`: 2,
		`earthplus_http_errors_total{code="not_found"}`:                 1,
		`earthplus_cache_hits_total{tier="mem"}`:                        1,
		`earthplus_cache_misses_total`:                                  1,
		`earthplus_in_flight_requests`:                                  0,
		`earthplus_request_duration_seconds_count`:                      2,
	} {
		if got := metricValue(text, series); got != want {
			t.Fatalf("%s = %d, want %d\n%s", series, got, want, text)
		}
	}
	if !strings.Contains(text, `earthplus_request_duration_seconds_bucket{le="+Inf"} 2`) {
		t.Fatalf("histogram +Inf bucket missing or wrong:\n%s", text)
	}
	if resp, err := ts.Client().Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(body, `"ok"`) {
			t.Fatalf("healthz: status %d body %q", resp.StatusCode, body)
		}
	}
}
