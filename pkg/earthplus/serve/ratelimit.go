package serve

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// Per-client token-bucket rate limiting keeps one hot client from
// starving the rest of the fleet's worker slots. Every encode/decode
// request spends one token from its client's bucket; the bucket refills
// at Config.RatePerSec up to Config.RateBurst. A client out of tokens is
// refused with 429 and a Retry-After hint derived from the bucket's own
// refill: the first refusal says how long until one token exists, and
// each further refusal while still dry escalates the hint by another
// refill interval, pushing a hammering client's retries apart instead of
// inviting a synchronized stampede. This is deliberately distinct from
// the 503/overload path, whose Retry-After is the queue window
// (Config.QueueWait): 429 means "you, specifically, are over budget",
// 503 means "the server, as a whole, is saturated".

// bucket is one client's token state.
type bucket struct {
	tokens float64
	last   time.Time
	// dry counts consecutive refusals since the last granted token; it
	// scales the escalating Retry-After and resets on success.
	dry int
}

// limiter is the per-client token-bucket table. A nil *limiter allows
// everything.
type limiter struct {
	rate  float64 // tokens per second
	burst float64

	mu      sync.Mutex
	clients map[string]*bucket
}

// limiterSweepThreshold bounds the client table: past this many tracked
// clients, fully-refilled idle buckets (indistinguishable from fresh
// ones) are swept on the next insert.
const limiterSweepThreshold = 4096

// newLimiter returns nil (unlimited) when rate <= 0.
func newLimiter(rate float64, burst int) *limiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if burst <= 0 {
		// Default burst: one second's refill, at least one token.
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{rate: rate, burst: b, clients: make(map[string]*bucket)}
}

// allow spends one token from id's bucket. When the bucket is dry it
// reports ok=false and the escalating whole-second Retry-After hint.
func (l *limiter) allow(id string, now time.Time) (ok bool, retryAfter int) {
	if l == nil {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.clients[id]
	if b == nil {
		if len(l.clients) >= limiterSweepThreshold {
			l.sweepLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[id] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.dry = 0
		return true, 0
	}
	// Escalate: the d-th consecutive refusal asks the client to wait for
	// d refill intervals past its current deficit, so back-to-back
	// hammering sees 1s, 2s, 3s... at rate 1.
	b.dry++
	wait := (float64(b.dry) - b.tokens) / l.rate
	retryAfter = int(math.Ceil(wait))
	if retryAfter < 1 {
		retryAfter = 1
	}
	return false, retryAfter
}

// sweepLocked drops buckets that have fully refilled: their future
// behaviour is identical to a fresh bucket, so forgetting them is
// invisible to clients.
func (l *limiter) sweepLocked(now time.Time) {
	for id, b := range l.clients {
		if now.Sub(b.last).Seconds()*l.rate >= l.burst-b.tokens {
			delete(l.clients, id)
		}
	}
}

// clientID resolves the rate-limit identity: the configured header when
// present (a trusted proxy's forwarded identity), else the remote IP
// with the ephemeral port stripped so reconnects share one bucket.
func clientID(r *http.Request, header string) string {
	if header != "" {
		if v := r.Header.Get(header); v != "" {
			return v
		}
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
