// Package serve is the network-facing layer of the public API: an HTTP
// server exposing the container codec under the /v1 prefix, built for
// ground-segment deployments that compress or unpack imagery as a
// service.
//
// Endpoints:
//
//	POST /v1/encode?width=&height=&bands=[&bpp=][&lossless=1][&levels=]
//	    Body: raw little-endian uint16 samples, band-major
//	    (width*height*bands*2 bytes). Responds with one container frame.
//	POST /v1/decode[?layers=N]
//	    Body: one container frame. Responds with raw little-endian uint16
//	    samples plus X-Earthplus-Width/-Height/-Bands headers.
//	GET  /v1/info
//	    JSON description: versions, registered systems, limits.
//
// Work runs behind a bounded semaphore (Config.MaxConcurrent): requests
// queue up to Config.QueueWait and are then refused with 503 and a
// Retry-After header, so overload degrades predictably instead of
// stacking unbounded goroutines. Request and response payloads move
// through pooled buffers, and the codec underneath runs on its own
// pooled scratch arenas, so a steady request load allocates little.
//
// Failures map the earthplus.Error taxonomy onto statuses: bad payloads
// and corrupt frames are 400, unknown systems 404, overload 503; every
// error body is JSON {"error":{"code","message"}} with the stable code
// string.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"earthplus/pkg/earthplus"
)

// Config parameterises the server. The zero value serves with sensible
// defaults.
type Config struct {
	// MaxConcurrent bounds the encode/decode requests running at once
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// QueueWait is how long a request may wait for a worker slot before
	// 503 (0 = 10s).
	QueueWait time.Duration
	// MaxBodyBytes caps request bodies (0 = 256 MiB). It symmetrically
	// caps decode output: a frame may claim at most MaxBodyBytes/2 total
	// samples, the most an encode body under the same cap could carry.
	MaxBodyBytes int64
	// DefaultBPP is the encode budget when the request passes none
	// (0 = 1.0, the paper's default γ).
	DefaultBPP float64
	// MaxPixels caps width*height per request (0 = 2^26, matching the
	// codec's hostile-stream decode bound).
	MaxPixels int
	// RequestTimeout bounds each request's total processing time via its
	// context: queueing, body read and codec work all charge against it.
	// A request that overruns is refused with 503 and a Retry-After
	// header — the deadline is server capacity protection, so the client
	// should retry, unlike a 499 where the client itself gave up.
	// 0 = 30s; negative = no deadline.
	RequestTimeout time.Duration
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.DefaultBPP == 0 {
		c.DefaultBPP = 1.0
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 1 << 26
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// maxRequestBands bounds the bands parameter of encode requests: far
// above any modeled sensor (Sentinel-2 has 13) yet far below the
// container's 16-bit band-table ceiling.
const maxRequestBands = 256

// Server serves the container codec over HTTP. Build with New, mount
// with Handler.
type Server struct {
	cfg  Config
	sem  chan struct{}
	bufs sync.Pool // *[]byte payload scratch, recycled across requests
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults()}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.bufs.New = func() any { b := make([]byte, 0, 1<<20); return &b }
	return s
}

// Handler returns the server's routing handler, mounted under /v1. When a
// RequestTimeout is configured every request's context carries it as a
// deadline, so queueing, body reads and codec work are all bounded by it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/encode", s.handleEncode)
	mux.HandleFunc("POST /v1/decode", s.handleDecode)
	mux.HandleFunc("GET /v1/info", s.handleInfo)
	if s.cfg.RequestTimeout < 0 {
		return mux
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

// acquire claims a worker slot, waiting up to QueueWait.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-t.C:
		return &earthplus.Error{Code: earthplus.CodeOverloaded, Op: "serve",
			Msg: fmt.Sprintf("no worker slot within %v", s.cfg.QueueWait)}
	case <-ctx.Done():
		return &earthplus.Error{Code: earthplus.CodeCanceled, Op: "serve", Err: ctx.Err()}
	}
}

func (s *Server) release() { <-s.sem }

// statusFor maps the error taxonomy onto HTTP statuses.
func statusFor(err error) int {
	code, ok := earthplus.ErrorCodeOf(err)
	if !ok {
		return http.StatusInternalServerError
	}
	switch code {
	case earthplus.CodeUnknownSystem:
		return http.StatusNotFound
	case earthplus.CodeOverloaded:
		return http.StatusServiceUnavailable
	case earthplus.CodeCanceled:
		if errors.Is(err, context.DeadlineExceeded) {
			// The server's own deadline fired, not the client hanging up:
			// capacity protection, so the client should retry later.
			return http.StatusServiceUnavailable
		}
		return 499 // client closed request
	case earthplus.CodeBadCodestream, earthplus.CodeBadImage,
		earthplus.CodeBadConfig, earthplus.CodeBudgetTooSmall:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds derives the overload Retry-After hint from the
// configured queue timeout: a client that waits out the full queue window
// before retrying sees a fresh queueing opportunity instead of hammering a
// still-saturated semaphore. Rounded up to whole seconds, minimum 1.
func (s *Server) retryAfterSeconds() int {
	sec := int((s.cfg.QueueWait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// writeError responds with the taxonomy code and message as JSON.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	code, ok := earthplus.ErrorCodeOf(err)
	if !ok {
		code = "internal"
	}
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{
		"error": {"code": string(code), "message": err.Error()},
	})
}

// badReq builds a CodeBadImage request error.
func badReq(format string, args ...any) error {
	return &earthplus.Error{Code: earthplus.CodeBadImage, Op: "serve", Msg: fmt.Sprintf(format, args...)}
}

// intParam parses an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badReq("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// readBody drains the request body into a pooled buffer. The returned
// release func recycles it; the slice is dead after release.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	bp := s.bufs.Get().(*[]byte)
	release := func() { *bp = (*bp)[:0]; s.bufs.Put(bp) }
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return buf, release, nil
		}
		if err != nil {
			release()
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return nil, nil, badReq("body exceeds the %d-byte limit", s.cfg.MaxBodyBytes)
			}
			return nil, nil, badReq("reading body: %v", err)
		}
	}
}

// handleEncode turns raw band-major uint16 samples into one container
// frame.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	dims := [4]int{0, 0, 1, 0} // width, height, bands, levels
	for i, p := range []struct {
		name     string
		positive bool
	}{{"width", true}, {"height", true}, {"bands", true}, {"levels", false}} {
		v, err := intParam(r, p.name, dims[i])
		if err == nil && p.positive && v <= 0 {
			err = badReq("missing or non-positive %s", p.name)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		dims[i] = v
	}
	width, height, bands, levels := dims[0], dims[1], dims[2], dims[3]
	// Divide rather than multiply: width*height on hostile query ints can
	// overflow to a negative product and slip past the cap.
	if height > s.cfg.MaxPixels/width {
		s.writeError(w, badReq("%dx%d exceeds the %d-pixel limit", width, height, s.cfg.MaxPixels))
		return
	}
	if bands > maxRequestBands {
		s.writeError(w, badReq("%d bands exceeds the %d-band limit", bands, maxRequestBands))
		return
	}
	opts := earthplus.EncodeOptions{BPP: s.cfg.DefaultBPP, Levels: levels}
	if v := r.URL.Query().Get("bpp"); v != "" {
		bpp, err := strconv.ParseFloat(v, 64)
		if err != nil {
			s.writeError(w, badReq("parameter bpp=%q is not a number", v))
			return
		}
		opts.BPP = bpp
	}
	if v := r.URL.Query().Get("lossless"); v == "1" || v == "true" {
		opts.Lossless = true
	}

	body, release, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	want := width * height * bands * 2
	if len(body) != want {
		s.writeError(w, badReq("body is %d bytes; %dx%dx%d uint16 samples need %d", len(body), width, height, bands, want))
		return
	}

	img := samplesToImage(body, width, height, bands)
	frame, err := earthplus.EncodeFrame(ctx, img, opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = frame.WriteTo(w)
}

// handleDecode turns one container frame back into raw band-major uint16
// samples.
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if err := s.acquire(ctx); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.release()

	layers, err := intParam(r, "layers", 0)
	if err != nil {
		s.writeError(w, err)
		return
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	// Pre-flight the claimed geometry so the configured pixel cap bounds
	// the decode work itself, not just the response.
	frame := earthplus.Codestream(body)
	fw, fh, fbands, err := earthplus.FrameDims(frame)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if fw*fh > s.cfg.MaxPixels {
		s.writeError(w, badReq("%dx%d exceeds the %d-pixel limit", fw, fh, s.cfg.MaxPixels))
		return
	}
	if fbands > maxRequestBands {
		s.writeError(w, badReq("%d bands exceeds the %d-band limit", fbands, maxRequestBands))
		return
	}
	// Pixels and bands pass their individual caps, but their product is
	// what DecodeFrame allocates (one float32 plane per band): a tiny
	// frame claiming max pixels times max bands would demand tens of GiB.
	// Bound total samples the way MaxBodyBytes already bounds the encode
	// side, where the 2-bytes-per-sample body carries them.
	if maxSamples := s.cfg.MaxBodyBytes / 2; int64(fw)*int64(fh)*int64(fbands) > maxSamples {
		s.writeError(w, badReq("%dx%dx%d samples exceed the %d-sample limit", fw, fh, fbands, maxSamples))
		return
	}
	img, err := earthplus.DecodeFrame(ctx, frame, nil, layers)
	if err != nil {
		s.writeError(w, err)
		return
	}
	out := s.bufs.Get().(*[]byte)
	defer func() { *out = (*out)[:0]; s.bufs.Put(out) }()
	samples := imageToSamples((*out)[:0], img)
	*out = samples
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(samples)))
	w.Header().Set("X-Earthplus-Width", strconv.Itoa(img.Width))
	w.Header().Set("X-Earthplus-Height", strconv.Itoa(img.Height))
	w.Header().Set("X-Earthplus-Bands", strconv.Itoa(img.NumBands()))
	_, _ = w.Write(samples)
}

// handleInfo describes the deployment.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"version": earthplus.Version,
		"api":     earthplus.APIVersion,
		"systems": earthplus.Systems(),
		"container": map[string]any{
			"magic":   earthplus.ContainerMagic,
			"version": earthplus.ContainerVersion,
		},
		"limits": map[string]any{
			"max_concurrent": s.cfg.MaxConcurrent,
			"max_body_bytes": s.cfg.MaxBodyBytes,
			"max_pixels":     s.cfg.MaxPixels,
		},
		"defaults": map[string]any{"bpp": s.cfg.DefaultBPP},
	})
}

// samplesToImage unpacks little-endian uint16 band-major samples.
func samplesToImage(body []byte, width, height, bands int) *earthplus.Image {
	info := make([]earthplus.BandInfo, bands)
	for b := range info {
		info[b].Name = "band" + strconv.Itoa(b)
	}
	img := earthplus.NewImage(width, height, info)
	n := width * height
	for b := 0; b < bands; b++ {
		plane := img.Plane(b)
		off := b * n * 2
		for i := 0; i < n; i++ {
			plane[i] = float32(binary.LittleEndian.Uint16(body[off+2*i:])) / 65535
		}
	}
	return img
}

// imageToSamples packs an image into little-endian uint16 band-major
// samples, appending to dst.
func imageToSamples(dst []byte, img *earthplus.Image) []byte {
	for b := 0; b < img.NumBands(); b++ {
		for _, v := range img.Plane(b) {
			dst = binary.LittleEndian.AppendUint16(dst, earthplus.Quantize16(v))
		}
	}
	return dst
}
