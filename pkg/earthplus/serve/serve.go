// Package serve is the network-facing layer of the public API: an HTTP
// server exposing the container codec under the /v1 prefix, built for
// ground-segment deployments that compress or unpack imagery as a
// service.
//
// Endpoints:
//
//	POST /v1/encode?width=&height=&bands=[&bpp=][&lossless=1][&tiled=1][&levels=]
//	    Body: raw little-endian uint16 samples, band-major
//	    (width*height*bands*2 bytes). Responds with one container frame.
//	    tiled=1 selects the tiled (EPT1) codestream profile, whose frames
//	    support region decode below.
//	POST /v1/decode[?layers=N][&x=&y=&w=&h=]
//	    Body: one container frame. Responds with raw little-endian uint16
//	    samples plus X-Earthplus-Width/-Height/-Bands headers. Passing a
//	    region (w and h required, x and y default 0, clipped to the
//	    plane) responds with just that rectangle's samples; on tiled
//	    frames only the covering tiles are decoded, on monolithic frames
//	    the full plane is decoded and cropped. layers does not combine
//	    with a region.
//	GET  /v1/info
//	    JSON description: versions, registered systems, limits.
//	GET  /metrics
//	    Operational counters in the Prometheus text format.
//	GET  /healthz
//	    Liveness probe; always {"status":"ok"}.
//
// The serving tier is built for heavy multi-tenant traffic, in four
// layers between the socket and the codec:
//
//   - Result cache. Success responses are cached content-addressed — a
//     digest over (endpoint, resolved options, body hash) — in a
//     byte-bounded in-memory LRU, optionally backed by a bounded on-disk
//     store (Config.CacheDir) that survives restarts. A repeat request
//     costs a hash, not a codec pass.
//   - Per-client rate limiting. Each client (Config.ClientHeader, or the
//     remote IP) owns a token bucket refilled at Config.RatePerSec; a dry
//     bucket refuses with 429 and an escalating Retry-After derived from
//     the bucket's own refill. Distinct from 503/overload, whose
//     Retry-After is the queue window: 429 is per-client fairness, 503 is
//     server-wide saturation.
//   - Request coalescing. Concurrent identical requests (same digest)
//     run one codec pass; followers wait on the leader's result without
//     holding worker slots, so a popular frame arriving N ways at once
//     still costs one slot and one decode.
//   - Bounded workers. Codec work runs behind a semaphore
//     (Config.MaxConcurrent): requests queue up to Config.QueueWait and
//     are then refused with 503 and a Retry-After header, so overload
//     degrades predictably instead of stacking unbounded goroutines.
//
// Request payloads move through pooled buffers, and the codec underneath
// runs on its own pooled scratch arenas, so a steady request load
// allocates little beyond the cached response bytes.
//
// Failures map the earthplus.Error taxonomy onto statuses: malformed
// requests are 400 bad_request, bad geometry/samples and corrupt frames
// are 400 (bad_image / bad_codestream), unknown systems 404, unknown
// paths 404 not_found, wrong methods 405 method_not_allowed (with Allow
// preserved), rate limiting 429 rate_limited, overload 503; every error
// body is JSON {"error":{"code","message"}} with the stable code string.
package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"earthplus/pkg/earthplus"
)

// Config parameterises the server. The zero value serves with sensible
// defaults.
type Config struct {
	// MaxConcurrent bounds the encode/decode requests running at once
	// (0 = GOMAXPROCS).
	MaxConcurrent int
	// QueueWait is how long a request may wait for a worker slot before
	// 503 (0 = 10s).
	QueueWait time.Duration
	// MaxBodyBytes caps request bodies (0 = 256 MiB). It symmetrically
	// caps decode output: a frame may claim at most MaxBodyBytes/2 total
	// samples, the most an encode body under the same cap could carry.
	MaxBodyBytes int64
	// DefaultBPP is the encode budget when the request passes none
	// (0 = 1.0, the paper's default γ).
	DefaultBPP float64
	// MaxPixels caps width*height per request (0 = 2^26, matching the
	// codec's hostile-stream decode bound).
	MaxPixels int
	// RequestTimeout bounds each request's total processing time via its
	// context: queueing, body read and codec work all charge against it.
	// A request that overruns is refused with 503 and a Retry-After
	// header — the deadline is server capacity protection, so the client
	// should retry, unlike a 499 where the client itself gave up.
	// 0 = 30s; negative = no deadline.
	RequestTimeout time.Duration
	// CacheMemBytes bounds the in-memory result-cache tier by total
	// cached response bytes (0 = 64 MiB; negative disables the memory
	// tier).
	CacheMemBytes int64
	// CacheDir enables the persistent result-cache tier: success
	// responses land content-addressed under this directory and survive
	// restarts ("" = memory-only caching).
	CacheDir string
	// CacheDiskBytes bounds the on-disk tier by total file bytes,
	// evicted oldest-access first (0 = 1 GiB).
	CacheDiskBytes int64
	// RatePerSec refills each client's token bucket, in requests per
	// second (0 = no per-client rate limiting).
	RatePerSec float64
	// RateBurst is the bucket capacity in requests (0 = one second's
	// refill, minimum 1).
	RateBurst int
	// ClientHeader names the request header carrying the rate-limit
	// client identity — set it behind a trusted proxy ("" = remote IP).
	ClientHeader string
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 10 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.DefaultBPP == 0 {
		c.DefaultBPP = 1.0
	}
	if c.MaxPixels <= 0 {
		c.MaxPixels = 1 << 26
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	switch {
	case c.CacheMemBytes == 0:
		c.CacheMemBytes = 64 << 20
	case c.CacheMemBytes < 0:
		c.CacheMemBytes = 0
	}
	if c.CacheDiskBytes <= 0 {
		c.CacheDiskBytes = 1 << 30
	}
	return c
}

// Validate rejects configurations no deployment could honour — called by
// cmd flag plumbing (cli.MustValidate) so a typo fails with one line on
// stderr before the listener opens. It probes CacheDir for writability:
// a cache that silently cannot persist is an operational lie.
func (c Config) Validate() error {
	if c.RatePerSec < 0 || c.RatePerSec != c.RatePerSec {
		return badConfig("rate limit must be >= 0 requests/s, got %v", c.RatePerSec)
	}
	if c.RateBurst < 0 {
		return badConfig("rate burst must be >= 0, got %d", c.RateBurst)
	}
	if c.CacheDiskBytes < 0 {
		return badConfig("disk cache budget must be >= 0 bytes, got %d", c.CacheDiskBytes)
	}
	if c.CacheDir != "" {
		if err := os.MkdirAll(c.CacheDir, 0o755); err != nil {
			return badConfig("cache dir: %v", err)
		}
		probe := filepath.Join(c.CacheDir, ".earthplus-probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			return badConfig("cache dir not writable: %v", err)
		}
		_ = os.Remove(probe)
	}
	return nil
}

// badConfig builds the bad_config taxonomy error Validate reports, so
// embedding callers can dispatch on earthplus.ErrBadConfig instead of
// string-matching (eperrboundary enforces this across the API surface).
func badConfig(format string, args ...any) error {
	return &earthplus.Error{Code: earthplus.CodeBadConfig, Op: "serve", Msg: fmt.Sprintf(format, args...)}
}

// maxRequestBands bounds the bands parameter of encode requests: far
// above any modeled sensor (Sentinel-2 has 13) yet far below the
// container's 16-bit band-table ceiling.
const maxRequestBands = 256

// Server serves the container codec over HTTP. Build with New, mount
// with Handler.
type Server struct {
	cfg     Config
	sem     chan struct{}
	bufs    sync.Pool // *[]byte payload scratch, recycled across requests
	cache   *resultCache
	limiter *limiter
	flight  *flightGroup
	metrics *serverMetrics
}

// New returns a server with the given configuration. An unusable
// CacheDir degrades to memory-only caching; run Config.Validate first to
// refuse such a deployment loudly instead.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults()}
	s.sem = make(chan struct{}, s.cfg.MaxConcurrent)
	s.bufs.New = func() any { b := make([]byte, 0, 1<<20); return &b }
	if s.cfg.CacheMemBytes > 0 || s.cfg.CacheDir != "" {
		s.cache = newResultCache(s.cfg.CacheMemBytes, s.cfg.CacheDir, s.cfg.CacheDiskBytes)
	}
	s.limiter = newLimiter(s.cfg.RatePerSec, s.cfg.RateBurst)
	s.flight = newFlightGroup()
	s.metrics = newServerMetrics()
	return s
}

// Handler returns the server's routing handler: the codec endpoints under
// /v1 plus /metrics and /healthz. Unrouted paths and wrong methods get
// the JSON error taxonomy (not_found, method_not_allowed), never Go's
// plain-text defaults. When a RequestTimeout is configured every
// request's context carries it as a deadline, so queueing, body reads and
// codec work are all bounded by it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/encode", s.instrument("encode", true, s.handleEncode))
	mux.HandleFunc("POST /v1/decode", s.instrument("decode", true, s.handleDecode))
	mux.HandleFunc("GET /v1/info", s.instrument("info", false, s.handleInfo))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	routed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern == "" {
			s.handleUnrouted(mux, w, r)
			return
		}
		mux.ServeHTTP(w, r)
	})
	if s.cfg.RequestTimeout < 0 {
		return routed
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		routed.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the status a handler writes, for metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// instrument wraps a handler with the request counter, the latency
// histogram and (for codec endpoints) the in-flight gauge.
func (s *Server) instrument(endpoint string, inFlight bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if inFlight {
			s.metrics.enterFlight()
			defer s.metrics.leaveFlight()
		}
		t0 := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.metrics.request(endpoint, rec.status, time.Since(t0))
	}
}

// headerProbe runs the mux's own not-found/not-allowed handler against a
// throwaway writer, purely to learn the status and Allow header it would
// have produced.
type headerProbe struct {
	header http.Header
	status int
}

func (p *headerProbe) Header() http.Header         { return p.header }
func (p *headerProbe) WriteHeader(status int)      { p.status = status }
func (p *headerProbe) Write(b []byte) (int, error) { return len(b), nil }

// handleUnrouted converts the mux's plain-text 404/405 defaults into the
// documented JSON error taxonomy, preserving the Allow header on 405 so
// clients still learn the supported methods.
func (s *Server) handleUnrouted(mux *http.ServeMux, w http.ResponseWriter, r *http.Request) {
	probe := &headerProbe{header: make(http.Header)}
	mux.ServeHTTP(probe, r)
	if probe.status == http.StatusMethodNotAllowed {
		if allow := probe.header.Get("Allow"); allow != "" {
			w.Header().Set("Allow", allow)
		}
		s.writeError(w, &earthplus.Error{Code: earthplus.CodeMethodNotAllowed, Op: "serve",
			Msg: fmt.Sprintf("method %s not allowed for %s", r.Method, r.URL.Path)})
		return
	}
	s.writeError(w, &earthplus.Error{Code: earthplus.CodeNotFound, Op: "serve",
		Msg: fmt.Sprintf("no such endpoint %s", r.URL.Path)})
}

// acquire claims a worker slot, waiting up to QueueWait.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-t.C:
		return &earthplus.Error{Code: earthplus.CodeOverloaded, Op: "serve",
			Msg: fmt.Sprintf("no worker slot within %v", s.cfg.QueueWait)}
	case <-ctx.Done():
		return &earthplus.Error{Code: earthplus.CodeCanceled, Op: "serve", Err: ctx.Err()}
	}
}

func (s *Server) release() { <-s.sem }

// statusFor maps the error taxonomy onto HTTP statuses.
func statusFor(err error) int {
	code, ok := earthplus.ErrorCodeOf(err)
	if !ok {
		return http.StatusInternalServerError
	}
	switch code {
	case earthplus.CodeUnknownSystem:
		return http.StatusNotFound
	case earthplus.CodeNotFound:
		return http.StatusNotFound
	case earthplus.CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case earthplus.CodeRateLimited:
		return http.StatusTooManyRequests
	case earthplus.CodeOverloaded:
		return http.StatusServiceUnavailable
	case earthplus.CodeCanceled:
		if errors.Is(err, context.DeadlineExceeded) {
			// The server's own deadline fired, not the client hanging up:
			// capacity protection, so the client should retry later.
			return http.StatusServiceUnavailable
		}
		return 499 // client closed request
	case earthplus.CodeBadCodestream, earthplus.CodeBadImage, earthplus.CodeBadRequest,
		earthplus.CodeBadConfig, earthplus.CodeBudgetTooSmall:
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// retryAfterSeconds derives the overload Retry-After hint from the
// configured queue timeout: a client that waits out the full queue window
// before retrying sees a fresh queueing opportunity instead of hammering a
// still-saturated semaphore. Rounded up to whole seconds, minimum 1.
// (The 429 path's Retry-After is different by design: it comes from the
// refusing client's own bucket refill — see ratelimit.go.)
func (s *Server) retryAfterSeconds() int {
	sec := int((s.cfg.QueueWait + time.Second - 1) / time.Second)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// writeError responds with the taxonomy code and message as JSON.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := statusFor(err)
	code, ok := earthplus.ErrorCodeOf(err)
	if !ok {
		code = "internal"
	}
	s.metrics.error(string(code))
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]map[string]string{
		"error": {"code": string(code), "message": err.Error()},
	})
}

// badReq builds a CodeBadRequest error: the request itself is malformed
// (unreadable body, unparsable parameter). Geometry and sample errors use
// badImage.
func badReq(format string, args ...any) error {
	return &earthplus.Error{Code: earthplus.CodeBadRequest, Op: "serve", Msg: fmt.Sprintf(format, args...)}
}

// badImage builds a CodeBadImage error: the request parsed fine but its
// image geometry or sample payload is invalid.
func badImage(format string, args ...any) error {
	return &earthplus.Error{Code: earthplus.CodeBadImage, Op: "serve", Msg: fmt.Sprintf(format, args...)}
}

// intParam parses an integer query parameter with a default.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badReq("parameter %s=%q is not an integer", name, v)
	}
	return n, nil
}

// readBody drains the request body into a pooled buffer. The returned
// release func recycles it; the slice is dead after release.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, func(), error) {
	bp := s.bufs.Get().(*[]byte)
	release := func() { *bp = (*bp)[:0]; s.bufs.Put(bp) }
	lr := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	buf := (*bp)[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			*bp = buf
			return buf, release, nil
		}
		if err != nil {
			release()
			var tooLarge *http.MaxBytesError
			if errors.As(err, &tooLarge) {
				return nil, nil, badReq("body exceeds the %d-byte limit", s.cfg.MaxBodyBytes)
			}
			return nil, nil, badReq("reading body: %v", err)
		}
	}
}

// rateLimit spends one token from the requesting client's bucket,
// writing the 429 refusal itself. It reports whether the request may
// proceed.
func (s *Server) rateLimit(w http.ResponseWriter, r *http.Request) bool {
	if s.limiter == nil {
		return true
	}
	id := clientID(r, s.cfg.ClientHeader)
	ok, retryAfter := s.limiter.allow(id, time.Now())
	if ok {
		return true
	}
	s.metrics.rateLimitedHit()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	s.writeError(w, &earthplus.Error{Code: earthplus.CodeRateLimited, Op: "serve",
		Msg: fmt.Sprintf("client %q exceeded %g requests/s; retry in %ds", id, s.cfg.RatePerSec, retryAfter)})
	return false
}

// workContext builds the context codec work runs on: detached from the
// requesting client (a coalescing leader must keep computing for its
// followers even if its own client hangs up) but still bounded by the
// configured RequestTimeout.
func (s *Server) workContext(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := context.WithoutCancel(r.Context())
	if s.cfg.RequestTimeout < 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.cfg.RequestTimeout)
}

// respond drives a codec request through the serving layers: result
// cache, then coalesced singleflight execution (which acquires the
// worker semaphore inside run), then cache fill on success.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, digest string, run func(ctx context.Context) (*cacheEntry, error)) {
	if ent, tier, ok := s.cache.get(digest); ok {
		s.metrics.cacheHit(tier)
		writeEntry(w, ent)
		return
	}
	if s.cache != nil {
		s.metrics.cacheMissed()
	}
	ent, err, shared := s.flight.do(r.Context(), digest, func() (*cacheEntry, error) {
		ctx, cancel := s.workContext(r)
		defer cancel()
		ent, err := run(ctx)
		if err != nil {
			return nil, err
		}
		s.cache.put(digest, ent)
		return ent, nil
	})
	if shared {
		s.metrics.coalescedServe()
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeEntry(w, ent)
}

// writeEntry emits a success response from its cache representation.
func writeEntry(w http.ResponseWriter, ent *cacheEntry) {
	w.Header().Set("Content-Type", ent.ContentType)
	for k, v := range ent.Headers {
		w.Header().Set(k, v)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(ent.Body)))
	_, _ = w.Write(ent.Body)
}

// handleEncode turns raw band-major uint16 samples into one container
// frame.
func (s *Server) handleEncode(w http.ResponseWriter, r *http.Request) {
	if !s.rateLimit(w, r) {
		return
	}
	dims := [4]int{0, 0, 1, 0} // width, height, bands, levels
	for i, p := range []struct {
		name     string
		positive bool
	}{{"width", true}, {"height", true}, {"bands", true}, {"levels", false}} {
		v, err := intParam(r, p.name, dims[i])
		if err == nil && p.positive && v <= 0 {
			err = badImage("missing or non-positive %s", p.name)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		dims[i] = v
	}
	width, height, bands, levels := dims[0], dims[1], dims[2], dims[3]
	// Divide rather than multiply: width*height on hostile query ints can
	// overflow to a negative product and slip past the cap.
	if height > s.cfg.MaxPixels/width {
		s.writeError(w, badImage("%dx%d exceeds the %d-pixel limit", width, height, s.cfg.MaxPixels))
		return
	}
	if bands > maxRequestBands {
		s.writeError(w, badImage("%d bands exceeds the %d-band limit", bands, maxRequestBands))
		return
	}
	opts := earthplus.EncodeOptions{BPP: s.cfg.DefaultBPP, Levels: levels}
	if v := r.URL.Query().Get("bpp"); v != "" {
		bpp, err := strconv.ParseFloat(v, 64)
		if err != nil {
			s.writeError(w, badReq("parameter bpp=%q is not a number", v))
			return
		}
		opts.BPP = bpp
	}
	if v := r.URL.Query().Get("lossless"); v == "1" || v == "true" {
		opts.Lossless = true
	}
	if v := r.URL.Query().Get("tiled"); v == "1" || v == "true" {
		if opts.Lossless {
			s.writeError(w, badReq("tiled and lossless are mutually exclusive"))
			return
		}
		opts.Tiled = true
	}

	body, release, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()
	want := width * height * bands * 2
	if len(body) != want {
		s.writeError(w, badImage("body is %d bytes; %dx%dx%d uint16 samples need %d", len(body), width, height, bands, want))
		return
	}

	digest := requestDigest("encode", []string{
		fmt.Sprintf("w=%d", width), fmt.Sprintf("h=%d", height),
		fmt.Sprintf("b=%d", bands), fmt.Sprintf("lv=%d", levels),
		fmt.Sprintf("bpp=%g", opts.BPP), fmt.Sprintf("ll=%v", opts.Lossless),
		fmt.Sprintf("tl=%v", opts.Tiled),
	}, body)
	s.respond(w, r, digest, func(ctx context.Context) (*cacheEntry, error) {
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		img := samplesToImage(body, width, height, bands)
		frame, err := earthplus.EncodeFrame(ctx, img, opts)
		if err != nil {
			return nil, err
		}
		return &cacheEntry{ContentType: "application/octet-stream", Body: []byte(frame)}, nil
	})
}

// handleDecode turns one container frame back into raw band-major uint16
// samples — the whole frame, or just a query-selected region (decoded
// from the covering tiles on the tiled profile).
func (s *Server) handleDecode(w http.ResponseWriter, r *http.Request) {
	if !s.rateLimit(w, r) {
		return
	}
	layers, err := intParam(r, "layers", 0)
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Optional region decode: presence of w or h selects it; x and y
	// default to the plane origin. On tiled frames only the covering
	// tiles are decoded; monolithic frames decode fully and crop.
	q := r.URL.Query()
	region := q.Get("w") != "" || q.Get("h") != "" || q.Get("x") != "" || q.Get("y") != ""
	var rx, ry, rw, rh int
	if region {
		for _, p := range []struct {
			name string
			dst  *int
		}{{"x", &rx}, {"y", &ry}, {"w", &rw}, {"h", &rh}} {
			if *p.dst, err = intParam(r, p.name, 0); err != nil {
				s.writeError(w, err)
				return
			}
		}
		if rw <= 0 || rh <= 0 {
			s.writeError(w, badReq("region decode needs positive w and h"))
			return
		}
		if layers > 0 {
			s.writeError(w, badReq("layers does not apply to region decodes"))
			return
		}
	}
	body, release, err := s.readBody(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	defer release()

	// Pre-flight the claimed geometry so the configured pixel cap bounds
	// the decode work itself, not just the response.
	frame := earthplus.Codestream(body)
	fw, fh, fbands, err := earthplus.FrameDims(frame)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if fw*fh > s.cfg.MaxPixels {
		s.writeError(w, badImage("%dx%d exceeds the %d-pixel limit", fw, fh, s.cfg.MaxPixels))
		return
	}
	if fbands > maxRequestBands {
		s.writeError(w, badImage("%d bands exceeds the %d-band limit", fbands, maxRequestBands))
		return
	}
	// Pixels and bands pass their individual caps, but their product is
	// what DecodeFrame allocates (one float32 plane per band): a tiny
	// frame claiming max pixels times max bands would demand tens of GiB.
	// Bound total samples the way MaxBodyBytes already bounds the encode
	// side, where the 2-bytes-per-sample body carries them.
	if maxSamples := s.cfg.MaxBodyBytes / 2; int64(fw)*int64(fh)*int64(fbands) > maxSamples {
		s.writeError(w, badImage("%dx%dx%d samples exceed the %d-sample limit", fw, fh, fbands, maxSamples))
		return
	}

	params := []string{fmt.Sprintf("layers=%d", layers)}
	if region {
		params = append(params, fmt.Sprintf("region=%d,%d,%d,%d", rx, ry, rw, rh))
	}
	digest := requestDigest("decode", params, body)
	s.respond(w, r, digest, func(ctx context.Context) (*cacheEntry, error) {
		if err := s.acquire(ctx); err != nil {
			return nil, err
		}
		defer s.release()
		var img *earthplus.Image
		if region {
			img, err = earthplus.DecodeFrameRegion(ctx, frame, nil, rx, ry, rw, rh)
		} else {
			img, err = earthplus.DecodeFrame(ctx, frame, nil, layers)
		}
		if err != nil {
			return nil, err
		}
		samples := imageToSamples(make([]byte, 0, img.Width*img.Height*img.NumBands()*2), img)
		return &cacheEntry{
			ContentType: "application/octet-stream",
			Headers: map[string]string{
				"X-Earthplus-Width":  strconv.Itoa(img.Width),
				"X-Earthplus-Height": strconv.Itoa(img.Height),
				"X-Earthplus-Bands":  strconv.Itoa(img.NumBands()),
			},
			Body: samples,
		}, nil
	})
}

// handleInfo describes the deployment.
func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"version": earthplus.Version,
		"api":     earthplus.APIVersion,
		"systems": earthplus.Systems(),
		"container": map[string]any{
			"magic":         earthplus.ContainerMagic,
			"version":       earthplus.ContainerVersion,
			"version_tiled": earthplus.ContainerVersionTiled,
		},
		"limits": map[string]any{
			"max_concurrent": s.cfg.MaxConcurrent,
			"max_body_bytes": s.cfg.MaxBodyBytes,
			"max_pixels":     s.cfg.MaxPixels,
		},
		"defaults": map[string]any{"bpp": s.cfg.DefaultBPP},
		"cache": map[string]any{
			"mem_bytes":  s.cfg.CacheMemBytes,
			"persistent": s.cfg.CacheDir != "",
			"disk_bytes": s.cfg.CacheDiskBytes,
		},
		"rate_limit": map[string]any{
			"per_sec": s.cfg.RatePerSec,
			"burst":   s.cfg.RateBurst,
		},
	})
}

// handleMetrics exposes the operational counters in the Prometheus text
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w)
}

// handleHealthz is the liveness probe.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// samplesToImage unpacks little-endian uint16 band-major samples.
func samplesToImage(body []byte, width, height, bands int) *earthplus.Image {
	info := make([]earthplus.BandInfo, bands)
	for b := range info {
		info[b].Name = "band" + strconv.Itoa(b)
	}
	img := earthplus.NewImage(width, height, info)
	n := width * height
	for b := 0; b < bands; b++ {
		plane := img.Plane(b)
		off := b * n * 2
		for i := 0; i < n; i++ {
			plane[i] = float32(binary.LittleEndian.Uint16(body[off+2*i:])) / 65535
		}
	}
	return img
}

// imageToSamples packs an image into little-endian uint16 band-major
// samples, appending to dst.
func imageToSamples(dst []byte, img *earthplus.Image) []byte {
	for b := 0; b < img.NumBands(); b++ {
		for _, v := range img.Plane(b) {
			dst = binary.LittleEndian.AppendUint16(dst, earthplus.Quantize16(v))
		}
	}
	return dst
}
