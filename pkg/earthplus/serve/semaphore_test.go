package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"earthplus/pkg/earthplus"
)

// TestAcquireOverloadAndCancel pins the worker-semaphore contract: a full
// server refuses with CodeOverloaded after QueueWait, and a caller whose
// context dies while queued gets CodeCanceled.
func TestAcquireOverloadAndCancel(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueWait: 20 * time.Millisecond})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	err := s.acquire(context.Background())
	if !errors.Is(err, earthplus.ErrOverloaded) {
		t.Fatalf("saturated acquire error %v is not ErrOverloaded", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err = s.acquire(ctx)
	if !errors.Is(err, earthplus.ErrCanceled) {
		t.Fatalf("canceled acquire error %v is not ErrCanceled", err)
	}

	s.release()
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s.release()
}

func TestStatusFor(t *testing.T) {
	cases := map[error]int{
		earthplus.ErrBadCodestream:  400,
		earthplus.ErrBadImage:       400,
		earthplus.ErrBadConfig:      400,
		earthplus.ErrBudgetTooSmall: 400,
		earthplus.ErrUnknownSystem:  404,
		earthplus.ErrOverloaded:     503,
		earthplus.ErrCanceled:       499,
		errors.New("plain"):         500,
	}
	for err, want := range cases {
		if got := statusFor(err); got != want {
			t.Fatalf("statusFor(%v) = %d, want %d", err, got, want)
		}
	}
}
