package serve

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"earthplus/pkg/earthplus"
)

// TestAcquireOverloadAndCancel pins the worker-semaphore contract: a full
// server refuses with CodeOverloaded after QueueWait, and a caller whose
// context dies while queued gets CodeCanceled.
func TestAcquireOverloadAndCancel(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueWait: 20 * time.Millisecond})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	err := s.acquire(context.Background())
	if !errors.Is(err, earthplus.ErrOverloaded) {
		t.Fatalf("saturated acquire error %v is not ErrOverloaded", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err = s.acquire(ctx)
	if !errors.Is(err, earthplus.ErrCanceled) {
		t.Fatalf("canceled acquire error %v is not ErrCanceled", err)
	}

	s.release()
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	s.release()
}

// TestRetryAfterDerivation pins the overload hint to the configured queue
// timeout: rounded up to whole seconds, never below 1.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 10},                      // default QueueWait = 10s
		{300 * time.Millisecond, 1},  // sub-second rounds up to the 1s floor
		{1 * time.Second, 1},         // exact seconds stay exact
		{1200 * time.Millisecond, 2}, // fractional seconds round up
		{30 * time.Second, 30},
	}
	for _, c := range cases {
		s := New(Config{QueueWait: c.wait})
		if got := s.retryAfterSeconds(); got != c.want {
			t.Fatalf("retryAfterSeconds(QueueWait=%v) = %d, want %d", c.wait, got, c.want)
		}
	}
}

// TestOverloadResponseCarriesRetryAfter saturates the worker semaphore and
// asserts the 503 response derives Retry-After from the queue timeout
// instead of a hard-coded constant. The request must be VALID: parsing
// and geometry pre-flights run before the semaphore (and before the
// result cache), so only work that would actually reach the codec can be
// refused for capacity.
func TestOverloadResponseCarriesRetryAfter(t *testing.T) {
	s := New(Config{MaxConcurrent: 1, QueueWait: 1200 * time.Millisecond})
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	defer s.release()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	img := earthplus.NewImage(8, 8, []earthplus.BandInfo{{Name: "b0"}})
	frame, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{Lossless: true})
	if err != nil {
		t.Fatalf("building probe frame: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/decode", "application/octet-stream", strings.NewReader(string(frame)))
	if err != nil {
		t.Fatalf("POST /v1/decode: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated decode status %d, want 503 (body %q)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q (ceil of the 1.2s queue timeout)", got, "2")
	}
	if !strings.Contains(string(body), "overloaded") {
		t.Fatalf("overload body %q does not carry the overloaded code", body)
	}
}

func TestStatusFor(t *testing.T) {
	cases := map[error]int{
		earthplus.ErrBadCodestream:  400,
		earthplus.ErrBadImage:       400,
		earthplus.ErrBadConfig:      400,
		earthplus.ErrBudgetTooSmall: 400,
		earthplus.ErrUnknownSystem:  404,
		earthplus.ErrOverloaded:     503,
		earthplus.ErrCanceled:       499,
		errors.New("plain"):         500,
	}
	for err, want := range cases {
		if got := statusFor(err); got != want {
			t.Fatalf("statusFor(%v) = %d, want %d", err, got, want)
		}
	}
	// A canceled error caused by the SERVER's own deadline is retryable
	// capacity protection (503), not a client hang-up (499).
	deadline := &earthplus.Error{Code: earthplus.CodeCanceled, Op: "serve", Err: context.DeadlineExceeded}
	if got := statusFor(deadline); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor(deadline-exceeded cancel) = %d, want 503", got)
	}
}
