package earthplus

import "earthplus/internal/experiments"

// Scale sizes an experiment run: scene size, profiling and evaluation
// windows, and the sweep points.
type Scale = experiments.Scale

// ExperimentResult is one regenerated table or figure.
type ExperimentResult = experiments.Result

// ExperimentJob pairs a stable key with the function regenerating one
// evaluation artefact.
type ExperimentJob = experiments.Job

// QuickScale is the fast default experiment scale.
func QuickScale() Scale { return experiments.QuickScale() }

// FullScale runs closer to paper scale.
func FullScale() Scale { return experiments.FullScale() }

// Experiments lists every regenerable artefact of the paper's evaluation
// at a scale, in render order. benchJSON and simBenchJSON name the files
// the codec and sim performance snapshots write (empty = don't write).
func Experiments(sc Scale, benchJSON, simBenchJSON string) []ExperimentJob {
	return experiments.Catalog(sc, benchJSON, simBenchJSON)
}

// experimentsSimWorkers backs SetSimWorkers (declared next to the other
// simulation knobs in sim.go).
func experimentsSimWorkers(n int) { experiments.SimWorkers = n }

// experimentsStorageModel backs SetStorageModel.
func experimentsStorageModel(budgetBytes int64, policy string) {
	experiments.StorageBytes = budgetBytes
	experiments.EvictPolicy = policy
}

// experimentsRefCompression backs SetRefCompression.
func experimentsRefCompression(on bool) { experiments.RefCompression = on }

// experimentsLinkFaults backs SetLinkFaults.
func experimentsLinkFaults(loss float64, seed uint64) {
	experiments.LinkLoss = loss
	experiments.LinkSeed = seed
}

// experimentsConstellation backs SetConstellation.
func experimentsConstellation(stations int, contactBudgetBytes int64) {
	experiments.ConstellationStations = stations
	experiments.ConstellationContactBudget = contactBudgetBytes
}
