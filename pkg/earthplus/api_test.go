package earthplus_test

import (
	"errors"
	"math"
	"testing"

	"earthplus/pkg/earthplus"
)

// testEnv builds a small 1-location environment that every registered
// system can simulate quickly.
func testEnv() *earthplus.Env {
	return &earthplus.Env{
		Scene:    earthplus.NewScene(earthplus.LargeConstellationSampled(earthplus.SizeQuick)),
		Orbit:    earthplus.Constellation{Satellites: 2, RevisitDays: 3},
		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
	}
}

func TestBuiltinSystemsRegistered(t *testing.T) {
	names := earthplus.Systems()
	for _, want := range []string{earthplus.SystemEarthPlus, earthplus.SystemKodan, earthplus.SystemSatRoI} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("system %q not registered (have %v)", want, names)
		}
	}
}

// TestEverySystemRoundTripsOneDay constructs every registered system by
// name and runs a one-day simulation end to end: the registry contract is
// that anything it returns satisfies System and survives the engine.
func TestEverySystemRoundTripsOneDay(t *testing.T) {
	for _, name := range earthplus.Systems() {
		t.Run(name, func(t *testing.T) {
			env := testEnv()
			sys, err := earthplus.NewSystem(name, env, earthplus.SystemSpec{GammaBPP: 1.0})
			if err != nil {
				t.Fatalf("NewSystem(%q): %v", name, err)
			}
			if sys.Name() == "" {
				t.Fatal("system reports an empty name")
			}
			res, err := earthplus.Run(env, sys, 0, 12, 13)
			if err != nil {
				t.Fatalf("1-day sim: %v", err)
			}
			if len(res.Records) == 0 {
				t.Fatal("no captures simulated")
			}
			sum := earthplus.Summarize(res, env.Downlink)
			if sum.Captures != len(res.Records) {
				t.Fatalf("summary counted %d captures for %d records", sum.Captures, len(res.Records))
			}
			for _, r := range res.Records {
				if !r.Dropped && !math.IsNaN(r.PSNR) && r.PSNR < 20 {
					t.Fatalf("implausible reconstruction PSNR %.1f", r.PSNR)
				}
			}
		})
	}
}

func TestUnknownSystemTypedError(t *testing.T) {
	_, err := earthplus.NewSystem("definitely-not-a-system", testEnv(), earthplus.SystemSpec{})
	if !errors.Is(err, earthplus.ErrUnknownSystem) {
		t.Fatalf("error %v is not ErrUnknownSystem", err)
	}
	if code, ok := earthplus.ErrorCodeOf(err); !ok || code != earthplus.CodeUnknownSystem {
		t.Fatalf("ErrorCodeOf = %q, %v", code, ok)
	}
}

func TestUnknownParamTypedError(t *testing.T) {
	spec := earthplus.SystemSpec{Params: map[string]float64{"guarantee_dayz": 3}}
	_, err := earthplus.NewSystem(earthplus.SystemEarthPlus, testEnv(), spec)
	if !errors.Is(err, earthplus.ErrBadConfig) {
		t.Fatalf("typo'd param error %v is not ErrBadConfig", err)
	}
}

// TestSystemSpecParams drives an Earth+ ablation knob through the unified
// spec: disabling the guaranteed download must eliminate guaranteed
// records that the default config produces.
func TestSystemSpecParams(t *testing.T) {
	run := func(spec earthplus.SystemSpec) []earthplus.Record {
		env := testEnv()
		sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := earthplus.Run(env, sys, 0, 40, 46)
		if err != nil {
			t.Fatal(err)
		}
		return res.Records
	}
	defRecs := run(earthplus.SystemSpec{Params: map[string]float64{"guarantee_days": 1}})
	offRecs := run(earthplus.SystemSpec{Params: map[string]float64{"guarantee_days": 1 << 20}})
	guarDef, guarOff := 0, 0
	for _, r := range defRecs {
		if r.Guaranteed {
			guarDef++
		}
	}
	for _, r := range offRecs {
		if r.Guaranteed {
			guarOff++
		}
	}
	if guarDef == 0 {
		t.Fatal("1-day guarantee period produced no guaranteed downloads")
	}
	if guarOff != 0 {
		t.Fatalf("disabled guarantee still produced %d guaranteed downloads", guarOff)
	}
}
