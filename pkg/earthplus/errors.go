package earthplus

import "earthplus/internal/eperr"

// Error is the typed error every layer of the API reports: a stable Code,
// the failing operation, and the wrapped cause. Match with errors.Is
// against the Err* sentinels, or extract the code with ErrorCodeOf.
type Error = eperr.Error

// ErrorCode classifies an Error; its string values are stable and are
// what the serving layer returns in HTTP error bodies.
type ErrorCode = eperr.Code

// The error codes.
const (
	CodeBadCodestream    = eperr.BadCodestream
	CodeBudgetTooSmall   = eperr.BudgetTooSmall
	CodeUnknownSystem    = eperr.UnknownSystem
	CodeBadConfig        = eperr.BadConfig
	CodeBadImage         = eperr.BadImage
	CodeBadRequest       = eperr.BadRequest
	CodeNotFound         = eperr.NotFound
	CodeMethodNotAllowed = eperr.MethodNotAllowed
	CodeRateLimited      = eperr.RateLimited
	CodeOverloaded       = eperr.Overloaded
	CodeCanceled         = eperr.Canceled
)

// Sentinels for errors.Is checks.
var (
	ErrBadCodestream    = eperr.ErrBadCodestream
	ErrBudgetTooSmall   = eperr.ErrBudgetTooSmall
	ErrUnknownSystem    = eperr.ErrUnknownSystem
	ErrBadConfig        = eperr.ErrBadConfig
	ErrBadImage         = eperr.ErrBadImage
	ErrBadRequest       = eperr.ErrBadRequest
	ErrNotFound         = eperr.ErrNotFound
	ErrMethodNotAllowed = eperr.ErrMethodNotAllowed
	ErrRateLimited      = eperr.ErrRateLimited
	ErrOverloaded       = eperr.ErrOverloaded
	ErrCanceled         = eperr.ErrCanceled
)

// ErrorCodeOf extracts err's classification, reporting false for errors
// outside the taxonomy.
func ErrorCodeOf(err error) (ErrorCode, bool) { return eperr.CodeOf(err) }
