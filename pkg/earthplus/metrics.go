package earthplus

import (
	"io"

	"earthplus/internal/metrics"
)

// Table renders rows as an aligned text table (first row = header).
func Table(w io.Writer, rows [][]string) { metrics.Table(w, rows) }

// Bar renders a labelled horizontal text bar chart.
func Bar(w io.Writer, title string, labels []string, values []float64, unit string, maxWidth int) {
	metrics.Bar(w, title, labels, values, unit, maxWidth)
}
