package earthplus

import "earthplus/internal/codec"

// CodecOptions controls one plane encode of the layered wavelet codec.
type CodecOptions = codec.Options

// CodecInfo describes a parsed per-band codestream header.
type CodecInfo = codec.Info

// DefaultCodecOptions returns the options used throughout the
// experiments (5 DWT levels, 1/2048 base quantiser step).
func DefaultCodecOptions() CodecOptions { return codec.DefaultOptions() }

// BudgetForBPP converts a bits-per-pixel target (the paper's γ) into a
// byte budget for a w x h plane.
func BudgetForBPP(bpp float64, w, h int) int { return codec.BudgetForBPP(bpp, w, h) }

// EncodePlane compresses one row-major w x h float32 plane into a
// per-band codestream (the payload unit inside container frames).
func EncodePlane(plane []float32, w, h int, opt CodecOptions) ([]byte, error) {
	return codec.EncodePlane(plane, w, h, opt)
}

// DecodePlane reconstructs a plane from a per-band codestream.
// maxLayers <= 0 decodes every quality layer; smaller values give the
// layered codec's reduced-quality renditions.
func DecodePlane(data []byte, maxLayers int) ([]float32, int, int, error) {
	return codec.DecodePlane(data, maxLayers)
}

// EncodePlaneLossless compresses a plane exactly (at 16-bit sample
// precision) with the reversible integer 5/3 path; there is no rate
// control.
func EncodePlaneLossless(plane []float32, w, h, levels int) ([]byte, error) {
	return codec.EncodePlaneLossless(plane, w, h, levels)
}

// DecodePlaneLossless reverses EncodePlaneLossless exactly.
func DecodePlaneLossless(data []byte) ([]float32, int, int, error) {
	return codec.DecodePlaneLossless(data)
}

// ParseCodestream validates a per-band codestream and returns its header
// description.
func ParseCodestream(data []byte) (CodecInfo, error) { return codec.Parse(data) }

// SetCodecParallelism sets the package-wide default for the number of
// bands encoded or decoded concurrently (<= 0 means GOMAXPROCS).
// Per-call control is CodecOptions.Parallelism.
func SetCodecParallelism(n int) { codec.Parallelism = n }

// Quantize16 returns the 16-bit sample a [0,1] value maps to in lossless
// mode; equality of Quantize16 values is the lossless guarantee.
func Quantize16(v float32) uint16 { return codec.Quantize16(v) }
