package earthplus

import (
	"io"

	"earthplus/internal/cloud"
	"earthplus/internal/raster"
)

// Image is a multi-band float32 raster in [0,1].
type Image = raster.Image

// BandInfo describes one spectral band.
type BandInfo = raster.BandInfo

// BandKind classifies what a spectral band chiefly observes.
type BandKind = raster.BandKind

// The band kinds.
const (
	KindGround     = raster.KindGround
	KindVegetation = raster.KindVegetation
	KindAtmosphere = raster.KindAtmosphere
	KindInfrared   = raster.KindInfrared
)

// TileGrid is the tiling geometry of an image.
type TileGrid = raster.TileGrid

// TileMask marks a subset of a grid's tiles (ROIs, cloudy tiles).
type TileMask = raster.TileMask

// CloudMask is a per-pixel cloud detection result.
type CloudMask = cloud.Mask

// NewImage allocates a zeroed width x height image with the given bands.
func NewImage(width, height int, bands []BandInfo) *Image {
	return raster.New(width, height, bands)
}

// NewTileGrid builds the tiling geometry of a w x h image with square
// tiles of the given side.
func NewTileGrid(w, h, tile int) (TileGrid, error) { return raster.NewTileGrid(w, h, tile) }

// NewTileMask returns an empty mask over a grid.
func NewTileMask(g TileGrid) *TileMask { return raster.NewTileMask(g) }

// ReadPGM parses an 8- or 16-bit binary PGM into a single-band image.
func ReadPGM(r io.Reader) (*Image, error) { return raster.ReadPGM(r) }

// PSNRBand returns the peak signal-to-noise ratio of band b of x against
// reference a, in dB.
func PSNRBand(a, x *Image, b int) float64 { return raster.PSNRBand(a, x, b) }

// Sentinel2Bands returns the 13-band Sentinel-2 layout used by the
// rich-content dataset.
func Sentinel2Bands() []BandInfo { return raster.Sentinel2Bands() }

// PlanetBands returns the 4-band Doves layout used by the
// large-constellation dataset.
func PlanetBands() []BandInfo { return raster.PlanetBands() }
