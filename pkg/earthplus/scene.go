package earthplus

import "earthplus/internal/scene"

// Scene synthesises the deterministic Earth-observation datasets: ground
// truth, clouds, seasonal and abrupt change, illumination and sensor
// noise per (location, day, satellite).
type Scene = scene.Scene

// SceneConfig parameterises a synthetic dataset.
type SceneConfig = scene.Config

// Location is one modeled ground location.
type Location = scene.Location

// Capture is one sensed (location, day, satellite) image with its ground
// truth and true cloud mask.
type Capture = scene.Capture

// SceneSize selects the dataset scale.
type SceneSize = scene.Size

const (
	// SizeQuick is the fast default scale used by tests and examples.
	SizeQuick = scene.Quick
	// SizeFull runs closer to paper scale.
	SizeFull = scene.Full
)

// NewScene builds a scene from a config (see RichContent,
// LargeConstellation and LargeConstellationSampled for the paper's
// datasets).
func NewScene(cfg SceneConfig) *Scene { return scene.New(cfg) }

// RichContent is the paper's Sentinel-2 Washington State dataset
// (Table 2): 11 locations across terrain types, 13 bands.
func RichContent(size SceneSize) SceneConfig { return scene.RichContent(size) }

// LargeConstellation is the paper's Planet dataset (Table 2): one coastal
// location observed by many Doves satellites in 4 bands, natural clouds.
func LargeConstellation(size SceneSize) SceneConfig { return scene.LargeConstellation(size) }

// LargeConstellationSampled is the Planet dataset as the paper evaluated
// it: captures sampled below 5% cloud coverage.
func LargeConstellationSampled(size SceneSize) SceneConfig {
	return scene.LargeConstellationSampled(size)
}
