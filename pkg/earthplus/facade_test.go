package earthplus_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"earthplus/pkg/earthplus"
)

// TestPlaneCodecFacade exercises the plane-level codec surface: encode,
// parse, layered decode and the lossless pair.
func TestPlaneCodecFacade(t *testing.T) {
	img := losslessTestImage(48, 32, 1)
	opts := earthplus.DefaultCodecOptions()
	opts.BudgetBytes = earthplus.BudgetForBPP(2.0, 48, 32)
	data, err := earthplus.EncodePlane(img.Plane(0), 48, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > opts.BudgetBytes {
		t.Fatalf("stream %d bytes exceeds budget %d", len(data), opts.BudgetBytes)
	}
	info, err := earthplus.ParseCodestream(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.W != 48 || info.H != 32 || info.NLayers < 1 {
		t.Fatalf("parsed %+v", info)
	}
	if _, w, h, err := earthplus.DecodePlane(data, 1); err != nil || w != 48 || h != 32 {
		t.Fatalf("layered decode: %v (%dx%d)", err, w, h)
	}

	ll, err := earthplus.EncodePlaneLossless(img.Plane(0), 48, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	plane, _, _, err := earthplus.DecodePlaneLossless(ll)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range img.Plane(0) {
		if earthplus.Quantize16(v) != earthplus.Quantize16(plane[i]) {
			t.Fatalf("lossless sample %d drifted", i)
		}
	}
}

func TestReadCodestream(t *testing.T) {
	frame, err := earthplus.EncodeFrame(context.Background(), losslessTestImage(32, 32, 2), earthplus.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := earthplus.ReadCodestream(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, frame) {
		t.Fatal("ReadCodestream did not reproduce the frame")
	}
}

func TestRegisterCustomSystem(t *testing.T) {
	earthplus.Register("facade-test-variant", func(env *earthplus.Env, spec earthplus.SystemSpec) (earthplus.System, error) {
		return earthplus.NewSystem(earthplus.SystemKodan, env, spec)
	})
	env := testEnv()
	sys, err := earthplus.NewSystem("facade-test-variant", env, earthplus.SystemSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Name() != "Kodan" {
		t.Fatalf("variant resolved to %q", sys.Name())
	}
}

func TestExperimentCatalog(t *testing.T) {
	jobs := earthplus.Experiments(earthplus.QuickScale(), "", "")
	if len(jobs) < 15 {
		t.Fatalf("only %d experiment jobs", len(jobs))
	}
	keys := map[string]bool{}
	for _, j := range jobs {
		if j.Key == "" || j.Run == nil {
			t.Fatalf("malformed job %+v", j)
		}
		if keys[j.Key] {
			t.Fatalf("duplicate key %q", j.Key)
		}
		keys[j.Key] = true
	}
	for _, want := range []string{"table1", "fig11b", "codecbench", "simbench", "ablation-theta"} {
		if !keys[want] {
			t.Fatalf("catalog is missing %q", want)
		}
	}
	if fs := earthplus.FullScale(); fs.EvalDays <= earthplus.QuickScale().EvalDays {
		t.Fatalf("FullScale eval window %d not larger than quick", fs.EvalDays)
	}
	// table1 is static and cheap: run it through the catalog.
	for _, j := range jobs {
		if j.Key != "table1" {
			continue
		}
		res, err := j.Run()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if buf.Len() == 0 || res.ID() == "" {
			t.Fatal("table1 rendered nothing")
		}
	}
}

func TestMetricsFacade(t *testing.T) {
	var buf bytes.Buffer
	earthplus.Table(&buf, [][]string{{"name", "value"}, {"a", "1"}})
	if !strings.Contains(buf.String(), "name") {
		t.Fatalf("Table output %q", buf.String())
	}
	buf.Reset()
	earthplus.Bar(&buf, "demo", []string{"x"}, []float64{1}, "B", 10)
	if buf.Len() == 0 {
		t.Fatal("Bar rendered nothing")
	}
}

func TestRasterFacade(t *testing.T) {
	if len(earthplus.Sentinel2Bands()) != 13 || len(earthplus.PlanetBands()) != 4 {
		t.Fatalf("band layouts: %d / %d", len(earthplus.Sentinel2Bands()), len(earthplus.PlanetBands()))
	}
	img := earthplus.NewImage(8, 8, []earthplus.BandInfo{{Name: "g"}})
	for i := range img.Plane(0) {
		img.Plane(0)[i] = float32(i) / 64
	}
	var pgm bytes.Buffer
	if err := img.WritePGM(&pgm, 0); err != nil {
		t.Fatal(err)
	}
	back, err := earthplus.ReadPGM(&pgm)
	if err != nil {
		t.Fatal(err)
	}
	if back.Width != 8 || back.Height != 8 {
		t.Fatalf("PGM round trip geometry %dx%d", back.Width, back.Height)
	}
	grid, err := earthplus.NewTileGrid(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	mask := earthplus.NewTileMask(grid)
	if mask.Count() != 0 {
		t.Fatalf("fresh mask count %d", mask.Count())
	}
}

func TestTraceRoundTripAndStreaming(t *testing.T) {
	env := testEnv()
	sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{})
	if err != nil {
		t.Fatal(err)
	}
	acc := earthplus.NewAccumulator()
	var streamed int
	res, err := earthplus.RunStream(env, sys, 0, 12, 14, func(r *earthplus.Record) {
		acc.Add(r)
		streamed++
	})
	if err != nil {
		t.Fatal(err)
	}
	if streamed == 0 {
		t.Fatal("no records streamed")
	}
	sum := acc.Summary(res, env.Downlink)
	if sum.Captures != streamed {
		t.Fatalf("accumulated %d captures for %d streamed", sum.Captures, streamed)
	}

	env2 := testEnv()
	sys2, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env2, earthplus.SystemSpec{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := earthplus.Run(env2, sys2, 0, 12, 13)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := earthplus.WriteTrace(&buf, full); err != nil {
		t.Fatal(err)
	}
	back, err := earthplus.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != len(full.Records) || back.System != full.System {
		t.Fatalf("trace round trip: %d records system %q", len(back.Records), back.System)
	}
}
