package earthplus

import (
	"io"

	"earthplus/internal/link"
	"earthplus/internal/orbit"
	"earthplus/internal/sim"
)

// Env is the shared simulation environment: the scene, the constellation,
// the downlink contact model and the per-satellite uplink budget.
type Env = sim.Env

// System is one on-board compression scheme under test; NewSystem builds
// the registered implementations.
type System = sim.System

// Outcome is what a System reports for one processed capture.
type Outcome = sim.Outcome

// Record is one capture's evaluated outcome.
type Record = sim.Record

// Result aggregates one simulation run.
type Result = sim.Result

// Summary condenses a run into the aggregates the experiments report.
type Summary = sim.Summary

// Accumulator folds Records into a Summary one at a time, so streaming
// runs aggregate without retaining the record set.
type Accumulator = sim.Accumulator

// Constellation is a fleet of identical, evenly phased satellites.
type Constellation = orbit.Constellation

// LinkBudget models a downlink's contact capacity.
type LinkBudget = link.Budget

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return sim.NewAccumulator() }

// Run simulates days [startDay, endDay) of the environment under sys,
// bootstrapping each location from the first near-clear day at or after
// bootstrapFrom. Locations are sharded across Env.Parallelism workers per
// day; results are identical at any worker count.
func Run(env *Env, sys System, bootstrapFrom, startDay, endDay int) (*Result, error) {
	return sim.Run(env, sys, bootstrapFrom, startDay, endDay)
}

// RunStream simulates like Run but hands each Record to emit in the
// deterministic serial order instead of retaining it; the returned Result
// carries the run aggregates with Records nil.
func RunStream(env *Env, sys System, bootstrapFrom, startDay, endDay int, emit func(*Record)) (*Result, error) {
	return sim.RunStream(env, sys, bootstrapFrom, startDay, endDay, emit)
}

// Summarize computes a run's aggregates under the given downlink model.
func Summarize(res *Result, down LinkBudget) Summary { return sim.Summarize(res, down) }

// EvalPSNR scores a ground reconstruction against the captured image over
// truly-clear tiles, pooled across bands — the paper's quality metric.
func EvalPSNR(cap *Capture, recon *Image, grid TileGrid) float64 {
	return sim.EvalPSNR(cap, recon, grid)
}

// WriteTrace writes a run as a JSON-lines trace.
func WriteTrace(w io.Writer, res *Result) error { return sim.WriteTrace(w, res) }

// ReadTrace reads a JSON-lines trace back into a Result.
func ReadTrace(r io.Reader) (*Result, error) { return sim.ReadTrace(r) }

// SetSimWorkers sets the default number of locations simulated
// concurrently per day for the experiment sweeps (<= 0 means GOMAXPROCS,
// 1 forces the serial path; results are identical at any setting).
// Per-run control is Env.Parallelism.
func SetSimWorkers(n int) { experimentsSimWorkers(n) }

// SetStorageModel sets the default on-board reference-store model for the
// experiment sweeps: budgetBytes bounds each satellite's store (0 = the
// paper's Table 1 default of 360 GB, negative = unlimited) and policy
// picks the eviction order ("lru" | "schedule"; empty = lru). Per-run
// control is SystemSpec.Params["storage_bytes"] and
// SystemSpec.StrParams["evict_policy"].
func SetStorageModel(budgetBytes int64, policy string) {
	experimentsStorageModel(budgetBytes, policy)
}

// SetRefCompression sets the default on-board reference representation
// for the experiment sweeps: on stores each satellite's references as
// encoded codestreams at the uplink's reference rate (the lossy wavelet
// codec at RefBPP — the representation updates already arrive in) — real
// encoded bytes charged against the storage budget (typically 2-5x below
// the raw 16-bit rate, so the same budget holds more locations) at the
// price of decoding the reference on each visit. The ground mirrors the
// same codec transform, so delta uplinks stay byte-coherent. Off (the
// default) keeps the raw planes and is byte-identical to the
// pre-compression behavior. Per-run control is
// SystemSpec.StrParams["ref_compression"] = "on" | "off".
func SetRefCompression(on bool) { experimentsRefCompression(on) }

// SetLinkFaults sets the default fault-injected ground↔satellite channel
// for the experiment sweeps: loss is the aggregate fault rate in [0,1],
// spread over frame drops, corruptions, truncations and whole-contact
// cancellations (0, the default, keeps the perfect channel and is
// byte-identical to it), and seed picks the deterministic fault pattern —
// outcomes are pure functions of (seed, direction, satellite, day,
// location), so runs are byte-identical at any worker count. Corrupted
// and truncated frames are CRC-rejected on board (the stale reference
// stays coherent) and lost reference updates are NACKed and retransmitted
// inside the same uplink budget. Per-run control is
// SystemSpec.Params["link_loss"] and ["link_seed"].
func SetLinkFaults(loss float64, seed uint64) { experimentsLinkFaults(loss, seed) }

// SetConstellation sets the default contended ground-station model for the
// experiment sweeps: stations ground stations, each serving at most one
// satellite per contact window, with a deterministic cross-satellite
// scheduler (re-seeds → deltas → demoted, lifted across the fleet) booking
// the windows and contactBudgetBytes capping each contact's uplink bytes
// (0 derives it from the flat per-day budget, negative = unlimited).
// stations 0 (the default) keeps the flat per-day uplink budget and is
// byte-identical to it. Per-run control is SystemSpec.Params["stations"]
// and ["contact_budget"], or SystemSpec.StrParams["constellation"] = "on"
// for the default station count.
func SetConstellation(stations int, contactBudgetBytes int64) {
	experimentsConstellation(stations, contactBudgetBytes)
}
