// Package earthplus is the public, versioned API of the Earth+
// reproduction — the only supported entry point for building the paper's
// compression systems, framing their codestreams for transport, and
// running constellation-scale simulations. Everything under internal/ is
// an implementation detail; cmds, examples and external consumers import
// this package (the HTTP serving layer lives in the pkg/earthplus/serve
// subpackage).
//
// # Systems
//
// Compression systems are constructed by name through a registry:
//
//	env := &earthplus.Env{
//		Scene:    earthplus.NewScene(earthplus.LargeConstellationSampled(earthplus.SizeQuick)),
//		Orbit:    earthplus.Constellation{Satellites: 4, RevisitDays: 4},
//		Downlink: earthplus.LinkBudget{Bps: 200e6, SecondsPerContact: 600, ContactsPerDay: 7},
//	}
//	sys, err := earthplus.NewSystem(earthplus.SystemEarthPlus, env, earthplus.SystemSpec{GammaBPP: 1.0})
//	res, err := earthplus.Run(env, sys, 0, 20, 34)
//	sum := earthplus.Summarize(res, env.Downlink)
//
// Earth+ itself ("earthplus") and the paper's two baselines ("kodan",
// "satroi") self-register; ablation variants configure through
// SystemSpec.Params. Register installs additional systems under new
// names.
//
// # Container format
//
// A Codestream is one framed multi-band codestream — the wire unit the
// Encoder/Decoder pair and the serving layer speak. The frame layout
// (little-endian) is:
//
//	offset  size  field
//	0       4     magic "EP+C"
//	4       1     version (currently 1)
//	5       1     flags (reserved, 0)
//	6       2     band count N (uint16)
//	8       4*N   band table: per-band payload length (uint32, 0 = band absent)
//	8+4N    …     per-band codec payloads, concatenated in band order
//	end-4   4     CRC-32C (Castagnoli) of everything before it
//
// The payloads inside are exactly the per-band wavelet codestreams the
// codec produces (magic "EPC1" lossy, "EPL1" lossless) — framing adds
// transport structure without altering one payload byte, so archived
// per-band streams remain decodable forever.
//
// Encoder and Decoder stream frames over io.Writer/io.Reader with
// context-aware cancellation:
//
//	enc := earthplus.NewEncoder(w, earthplus.EncodeOptions{BPP: 1.0})
//	err := enc.Encode(ctx, img)          // one frame per image
//	dec := earthplus.NewDecoder(r)
//	img, err := dec.Decode(ctx)          // io.EOF at clean end of stream
//
// # Errors
//
// Failures across the API carry stable codes via *Error; branch with
// errors.Is against the exported sentinels:
//
//	ErrBadCodestream  — malformed, truncated or corrupt frame/codestream
//	ErrBudgetTooSmall — byte budget below the codestream framing floor
//	ErrUnknownSystem  — name not in the system registry
//	ErrBadConfig      — invalid system or codec configuration
//	ErrBadImage       — image geometry/size invalid
//	ErrBadRequest     — malformed request at the serving surface
//	ErrNotFound       — no such serving endpoint
//	ErrMethodNotAllowed — wrong HTTP method for a serving endpoint
//	ErrRateLimited    — per-client rate limit exceeded (HTTP 429)
//	ErrOverloaded     — serving layer at capacity (HTTP 503)
//	ErrCanceled       — caller's context ended mid-operation
//
// # Versioning
//
// APIVersion ("v1") names this surface; the serving layer mounts its
// endpoints under the same version prefix. CI snapshots `go doc` output
// of this package, so any drift of the exported surface is an explicit,
// reviewed change.
package earthplus

import root "earthplus"

// Version identifies the reproduction's release line (re-exported from
// the module root, the single place it is bumped).
const Version = root.Version

// APIVersion names the public API surface and the serving layer's URL
// prefix (/v1/...).
const APIVersion = "v1"
