package earthplus_test

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earthplus/pkg/earthplus"
)

// goldenDir is the committed PR-2 wire-format corpus: per-band
// codestreams and their bit-exact reconstructions.
const goldenDir = "../../internal/codec/testdata"

// TestContainerPreservesGoldenWireBytes frames every committed golden
// codestream into a container and decodes it back through the public API:
// the payload must survive framing byte-identically, and decoding it must
// reproduce the committed reconstruction bit for bit — the container adds
// transport structure without touching the PR-2 wire format.
func TestContainerPreservesGoldenWireBytes(t *testing.T) {
	bins, err := filepath.Glob(filepath.Join(goldenDir, "golden_*.bin"))
	if err != nil || len(bins) == 0 {
		t.Fatalf("no golden vectors found: %v", err)
	}
	for _, bin := range bins {
		name := strings.TrimSuffix(filepath.Base(bin), ".bin")
		t.Run(name, func(t *testing.T) {
			payload, err := os.ReadFile(bin)
			if err != nil {
				t.Fatal(err)
			}
			wantDec, err := os.ReadFile(strings.TrimSuffix(bin, ".bin") + ".dec")
			if err != nil {
				t.Fatal(err)
			}

			frame := earthplus.PackCodestream([][]byte{payload})
			bands, err := frame.Split()
			if err != nil {
				t.Fatalf("Split: %v", err)
			}
			if !bytes.Equal(bands[0], payload) {
				t.Fatal("framing altered the golden payload bytes")
			}

			var plane []float32
			if strings.Contains(name, "lossless") {
				plane, _, _, err = earthplus.DecodePlaneLossless(bands[0])
			} else {
				plane, _, _, err = earthplus.DecodePlane(bands[0], 0)
			}
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			got := make([]byte, 0, 4*len(plane))
			for _, v := range plane {
				got = binary.LittleEndian.AppendUint32(got, math.Float32bits(v))
			}
			if !bytes.Equal(got, wantDec) {
				t.Fatal("container-framed decode diverged from the golden reconstruction")
			}
		})
	}
}

// losslessTestImage builds an image whose samples sit exactly on the
// 16-bit lossless lattice, so a lossless round trip must be bit-exact.
func losslessTestImage(w, h, bands int) *earthplus.Image {
	info := make([]earthplus.BandInfo, bands)
	for b := range info {
		info[b].Name = "t" + string(rune('0'+b))
	}
	img := earthplus.NewImage(w, h, info)
	for b := 0; b < bands; b++ {
		plane := img.Plane(b)
		for i := range plane {
			k := (i*2654435761 + b*97) % 65536
			plane[i] = float32(k) / 65535
		}
	}
	return img
}

func TestEncoderDecoderStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := earthplus.NewEncoder(&buf, earthplus.EncodeOptions{Lossless: true})
	imgs := []*earthplus.Image{
		losslessTestImage(48, 32, 3),
		losslessTestImage(32, 32, 2),
	}
	ctx := context.Background()
	for _, img := range imgs {
		if err := enc.Encode(ctx, img); err != nil {
			t.Fatalf("Encode: %v", err)
		}
	}

	dec := earthplus.NewDecoder(&buf)
	for i, want := range imgs {
		got, err := dec.Decode(ctx)
		if err != nil {
			t.Fatalf("Decode frame %d: %v", i, err)
		}
		if got.Width != want.Width || got.Height != want.Height || got.NumBands() != want.NumBands() {
			t.Fatalf("frame %d geometry %dx%dx%d", i, got.Width, got.Height, got.NumBands())
		}
		for b := 0; b < want.NumBands(); b++ {
			gp, wp := got.Plane(b), want.Plane(b)
			for j := range wp {
				if gp[j] != wp[j] {
					t.Fatalf("frame %d band %d sample %d: %v != %v (lossless round trip not exact)", i, b, j, gp[j], wp[j])
				}
			}
		}
	}
	if _, err := dec.Decode(ctx); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
}

func TestEncoderLossyQuality(t *testing.T) {
	var buf bytes.Buffer
	img := losslessTestImage(64, 64, 2)
	// Smooth content so 2 bpp is plenty.
	for b := 0; b < 2; b++ {
		plane := img.Plane(b)
		for i := range plane {
			x, y := i%64, i/64
			plane[i] = 0.5 + 0.4*float32(math.Sin(float64(x)/9))*float32(math.Cos(float64(y)/7))
		}
	}
	enc := earthplus.NewEncoder(&buf, earthplus.EncodeOptions{BPP: 2.0})
	if err := enc.Encode(context.Background(), img); err != nil {
		t.Fatal(err)
	}
	budget := earthplus.BudgetForBPP(2.0, 64, 64)*2 + 64 // per-band budgets + framing
	if buf.Len() > budget {
		t.Fatalf("frame is %d bytes for a %d-byte budget", buf.Len(), budget)
	}
	got, err := earthplus.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 2; b++ {
		if psnr := earthplus.PSNRBand(img, got, b); psnr < 40 {
			t.Fatalf("band %d PSNR %.1f dB at 2 bpp", b, psnr)
		}
	}
}

func TestEncodeBudgetTooSmallTypedError(t *testing.T) {
	img := losslessTestImage(32, 32, 1)
	_, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{BPP: 0.01})
	if !errors.Is(err, earthplus.ErrBudgetTooSmall) {
		t.Fatalf("tiny-budget error %v is not ErrBudgetTooSmall", err)
	}
}

func TestDecodeCorruptFrameTypedErrors(t *testing.T) {
	frame, err := earthplus.EncodeFrame(context.Background(), losslessTestImage(32, 32, 2), earthplus.EncodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for name, mangle := range map[string]func() earthplus.Codestream{
		"truncated frame": func() earthplus.Codestream { return frame[:len(frame)/2] },
		"bad magic":       func() earthplus.Codestream { c := append(earthplus.Codestream(nil), frame...); c[0] = 'Z'; return c },
		"payload bit flip": func() earthplus.Codestream {
			c := append(earthplus.Codestream(nil), frame...)
			c[len(c)/2] ^= 1
			return c
		},
		"empty frame": func() earthplus.Codestream { return earthplus.PackCodestream(nil) },
		"absent band": func() earthplus.Codestream { return earthplus.PackCodestream([][]byte{nil, []byte("EPC1xxxx")}) },
	} {
		if _, err := earthplus.DecodeFrame(ctx, mangle(), nil, 0); !errors.Is(err, earthplus.ErrBadCodestream) {
			t.Fatalf("%s: error %v is not ErrBadCodestream", name, err)
		}
	}

	// A decoder reading a mid-frame-truncated stream reports corruption,
	// not clean EOF.
	if _, err := earthplus.NewDecoder(bytes.NewReader(frame[:len(frame)-2])).Decode(ctx); !errors.Is(err, earthplus.ErrBadCodestream) {
		t.Fatalf("truncated stream error %v is not ErrBadCodestream", err)
	}
}

func TestFrameDims(t *testing.T) {
	frame, err := earthplus.EncodeFrame(context.Background(), losslessTestImage(48, 32, 3), earthplus.EncodeOptions{Lossless: true})
	if err != nil {
		t.Fatal(err)
	}
	w, h, bands, err := earthplus.FrameDims(frame)
	if err != nil || w != 48 || h != 32 || bands != 3 {
		t.Fatalf("FrameDims = %d %d %d, %v", w, h, bands, err)
	}
	if _, _, _, err := earthplus.FrameDims(earthplus.PackCodestream(nil)); !errors.Is(err, earthplus.ErrBadCodestream) {
		t.Fatalf("bandless frame error %v", err)
	}
	if _, _, _, err := earthplus.FrameDims(frame[:len(frame)-1]); !errors.Is(err, earthplus.ErrBadCodestream) {
		t.Fatalf("truncated frame error %v", err)
	}
	// Bands claiming different geometries are refused: FrameDims reports
	// the geometry of the whole frame, so a later band cannot hide decode
	// work behind an innocuous band 0.
	mixed := [][]byte{
		{'E', 'P', 'C', '1', 8, 0, 8, 0},
		{'E', 'P', 'C', '1', 0, 32, 0, 32}, // claims 8192x8192
	}
	if _, _, _, err := earthplus.FrameDims(earthplus.PackCodestream(mixed)); !errors.Is(err, earthplus.ErrBadCodestream) {
		t.Fatalf("mismatched band geometry error %v", err)
	}
}

func TestEncodeTooManyBandsTypedError(t *testing.T) {
	img := losslessTestImage(1, 1, 5000)
	_, err := earthplus.EncodeFrame(context.Background(), img, earthplus.EncodeOptions{Lossless: true})
	if !errors.Is(err, earthplus.ErrBadImage) {
		t.Fatalf("band-bomb error %v is not ErrBadImage", err)
	}
}

func TestEncodeCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := earthplus.EncodeFrame(ctx, losslessTestImage(32, 32, 2), earthplus.EncodeOptions{})
	if !errors.Is(err, earthplus.ErrCanceled) {
		t.Fatalf("canceled-context error %v is not ErrCanceled", err)
	}
}
